#include "workload/cosmos.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdmc::workload {

namespace {
std::uint64_t choose3(std::uint64_t n) {
  return n * (n - 1) * (n - 2) / 6;
}
}  // namespace

CosmosTraceGenerator::CosmosTraceGenerator(CosmosConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.num_hosts >= 3);
  assert(config_.mean_bytes > config_.median_bytes);
  mu_ = std::log(static_cast<double>(config_.median_bytes));
  // mean = median * exp(sigma^2 / 2)  =>  sigma = sqrt(2 ln(mean/median)).
  sigma_ = std::sqrt(2.0 * std::log(static_cast<double>(config_.mean_bytes) /
                                    static_cast<double>(config_.median_bytes)));
}

std::uint32_t CosmosTraceGenerator::num_groups() const {
  return static_cast<std::uint32_t>(choose3(config_.num_hosts));
}

std::array<std::uint32_t, 3> CosmosTraceGenerator::group_members(
    std::uint32_t group_index) const {
  // Unrank the combination in lexicographic order.
  std::array<std::uint32_t, 3> combo{};
  std::uint32_t remaining = group_index;
  std::uint32_t next = 0;
  for (int slot = 0; slot < 3; ++slot) {
    for (std::uint32_t v = next;; ++v) {
      // Combinations starting with v at this slot.
      const std::uint32_t tail = 2 - slot;
      const std::uint32_t rest = config_.num_hosts - v - 1;
      std::uint64_t count = 1;
      if (tail == 2) count = static_cast<std::uint64_t>(rest) * (rest - 1) / 2;
      else if (tail == 1) count = rest;
      if (remaining < count) {
        combo[slot] = v;
        next = v + 1;
        break;
      }
      remaining -= static_cast<std::uint32_t>(count);
    }
  }
  return combo;
}

std::uint32_t CosmosTraceGenerator::index_of(
    const std::array<std::uint32_t, 3>& combo) const {
  // Rank the sorted combination lexicographically.
  std::uint32_t rank = 0;
  std::uint32_t prev = 0;
  for (int slot = 0; slot < 3; ++slot) {
    for (std::uint32_t v = prev; v < combo[slot]; ++v) {
      const std::uint32_t tail = 2 - slot;
      const std::uint32_t rest = config_.num_hosts - v - 1;
      std::uint64_t count = 1;
      if (tail == 2) count = static_cast<std::uint64_t>(rest) * (rest - 1) / 2;
      else if (tail == 1) count = rest;
      rank += static_cast<std::uint32_t>(count);
    }
    prev = combo[slot] + 1;
  }
  return rank;
}

CosmosWrite CosmosTraceGenerator::next() {
  CosmosWrite write;
  const double raw = rng_.lognormal(mu_, sigma_);
  write.bytes = static_cast<std::uint64_t>(
      std::clamp(raw, static_cast<double>(config_.min_bytes),
                 static_cast<double>(config_.max_bytes)));

  // Draw 3 distinct hosts via partial Fisher-Yates over [0, num_hosts).
  std::array<std::uint32_t, 3> replicas{};
  std::uint32_t chosen = 0;
  while (chosen < 3) {
    const auto candidate = static_cast<std::uint32_t>(
        rng_.uniform(0, config_.num_hosts - 1));
    bool duplicate = false;
    for (std::uint32_t i = 0; i < chosen; ++i)
      duplicate |= replicas[i] == candidate;
    if (!duplicate) replicas[chosen++] = candidate;
  }
  std::sort(replicas.begin(), replicas.end());
  write.replicas = replicas;
  write.group_index = index_of(replicas);
  return write;
}

std::vector<CosmosWrite> CosmosTraceGenerator::generate(std::size_t count) {
  std::vector<CosmosWrite> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) trace.push_back(next());
  return trace;
}

}  // namespace rdmc::workload
