// Synthetic stand-in for the Microsoft Cosmos replication-layer trace
// (paper §5.2.2, Fig 9).
//
// The real trace is proprietary; the paper discloses its aggregate shape:
// several million 3-node writes with random target nodes, object sizes from
// hundreds of bytes to hundreds of MB, median 12 MB, mean 29 MB. A
// log-normal with mu = ln(median) and sigma = sqrt(2 ln(mean/median))
// reproduces exactly those statistics; sizes are clamped to the stated
// range. Replica groups are drawn uniformly from the C(15,3) = 455
// combinations of the 15 replica hosts — the 455 pre-created RDMC groups
// the paper mentions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace rdmc::workload {

struct CosmosWrite {
  std::uint64_t bytes = 0;
  /// Replica host indices in [0, num_hosts), sorted ascending.
  std::array<std::uint32_t, 3> replicas{};
  /// Index of the (sorted) replica combination in [0, C(num_hosts, 3)) —
  /// identifies which pre-created group serves this write.
  std::uint32_t group_index = 0;
};

struct CosmosConfig {
  std::uint32_t num_hosts = 15;
  std::uint64_t median_bytes = 12'000'000;
  std::uint64_t mean_bytes = 29'000'000;
  std::uint64_t min_bytes = 200;           // "hundreds of bytes"
  std::uint64_t max_bytes = 256'000'000;   // "hundreds of MB"
  std::uint64_t seed = 0xC05305;
};

class CosmosTraceGenerator {
 public:
  explicit CosmosTraceGenerator(CosmosConfig config = {});

  CosmosWrite next();
  std::vector<CosmosWrite> generate(std::size_t count);

  /// Number of distinct 3-replica groups: C(num_hosts, 3).
  std::uint32_t num_groups() const;

  /// Enumerate the sorted 3-subsets in group_index order.
  std::array<std::uint32_t, 3> group_members(std::uint32_t group_index) const;

  const CosmosConfig& config() const { return config_; }

 private:
  std::uint32_t index_of(const std::array<std::uint32_t, 3>& combo) const;

  CosmosConfig config_;
  util::Rng rng_;
  double mu_, sigma_;
};

}  // namespace rdmc::workload
