// Minimal JSON well-formedness checker shared by the observability tests
// (no external JSON parser is available in this build).
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace rdmc::tests {

class JsonScanner {
 public:
  explicit JsonScanner(const std::string& s) : s_(s) {}

  bool whole_document() {
    ws();
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    ws();
    if (peek('}')) { ++i_; return true; }
    while (true) {
      ws();
      if (!string_lit()) return false;
      ws();
      if (!peek(':')) return false;
      ++i_;
      ws();
      if (!value()) return false;
      ws();
      if (peek(',')) { ++i_; continue; }
      if (peek('}')) { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    ws();
    if (peek(']')) { ++i_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek(',')) { ++i_; continue; }
      if (peek(']')) { ++i_; return true; }
      return false;
    }
  }
  bool string_lit() {
    if (!peek('"')) return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek('-')) ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool lit(const char* t) {
    const std::size_t n = std::char_traits<char>::length(t);
    if (s_.compare(i_, n, t) != 0) return false;
    i_ += n;
    return true;
  }
  bool peek(char c) const { return i_ < s_.size() && s_[i_] == c; }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace rdmc::tests
