// The Derecho-style atomic multicast layer (§4.6): stability-gated
// delivery via the one-sided status table, and leader-based cleanup after
// failures.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "derecho_lite/atomic_group.hpp"
#include "fabric/mem_fabric.hpp"
#include "fabric/sim_fabric.hpp"
#include "harness/sim_harness.hpp"
#include "util/random.hpp"

namespace rdmc::derecho_lite {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> pattern(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::byte> v(size);
  for (auto& b : v) b = static_cast<std::byte>(rng());
  return v;
}

class AtomicCluster {
 public:
  explicit AtomicCluster(std::size_t n) : fabric_(n), delivered_(n) {
    for (std::size_t i = 0; i < n; ++i)
      nodes_.push_back(
          std::make_unique<Node>(fabric_, static_cast<NodeId>(i)));
  }
  ~AtomicCluster() {
    groups_.clear();  // atomic groups detach before nodes
    nodes_.clear();
    fabric_.stop();
  }

  void create_everywhere(GroupId id, std::vector<NodeId> members,
                         AtomicGroupOptions options = {}) {
    for (NodeId m : members) {
      groups_.push_back(std::make_unique<AtomicGroup>(
          *nodes_[m], id, members, options,
          [this, m](std::size_t seq, const std::byte* data,
                    std::size_t size) {
            std::lock_guard lock(mutex_);
            delivered_[m].emplace_back(seq,
                                       std::vector<std::byte>(data,
                                                              data + size));
            cv_.notify_all();
          },
          [this, m](std::size_t safe, NodeId suspect) {
            std::lock_guard lock(mutex_);
            wedged_.emplace_back(m, safe, suspect);
            cv_.notify_all();
          }));
      by_member_[m] = groups_.back().get();
    }
  }

  AtomicGroup& group(NodeId m) { return *by_member_.at(m); }
  Node& node(NodeId m) { return *nodes_[m]; }
  fabric::MemFabric& fabric() { return fabric_; }

  bool wait_delivered(NodeId m, std::size_t count) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, 20s,
                        [&] { return delivered_[m].size() >= count; });
  }
  bool wait_wedged(std::size_t count) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, 20s, [&] { return wedged_.size() >= count; });
  }
  std::vector<std::pair<std::size_t, std::vector<std::byte>>> log(NodeId m) {
    std::lock_guard lock(mutex_);
    return delivered_[m];
  }
  std::vector<std::tuple<NodeId, std::size_t, NodeId>> wedges() {
    std::lock_guard lock(mutex_);
    return wedged_;
  }

 private:
  fabric::MemFabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<AtomicGroup>> groups_;
  std::map<NodeId, AtomicGroup*> by_member_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<std::pair<std::size_t, std::vector<std::byte>>>>
      delivered_;
  std::vector<std::tuple<NodeId, std::size_t, NodeId>> wedged_;
};

TEST(AtomicGroup, AllMembersDeliverSameSequence) {
  AtomicCluster cluster(4);
  AtomicGroupOptions options;
  options.rdmc.block_size = 8 * 1024;
  cluster.create_everywhere(1, {0, 1, 2, 3}, options);

  constexpr std::size_t kCount = 10;
  std::vector<std::vector<std::byte>> payloads;
  for (std::size_t i = 0; i < kCount; ++i)
    payloads.push_back(pattern(5000 + 137 * i, i));
  for (auto& p : payloads)
    ASSERT_TRUE(cluster.group(0).send(p.data(), p.size()));

  // Everyone — including the sender — delivers every message.
  for (NodeId m = 0; m < 4; ++m)
    ASSERT_TRUE(cluster.wait_delivered(m, kCount)) << "member " << m;
  for (NodeId m = 0; m < 4; ++m) {
    const auto log = cluster.log(m);
    ASSERT_EQ(log.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(log[i].first, i) << "member " << m;
      EXPECT_EQ(log[i].second, payloads[i]) << "member " << m;
    }
  }
}

TEST(AtomicGroup, DeliveryWaitsForGlobalStability) {
  // On the simulator (deterministic virtual time), atomic delivery of a
  // message must not happen before the last member's raw receipt.
  sim::Simulator simulator;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 4, .nic_gbps = 100.0});
  fabric::SimFabric fabric(simulator, topo, {});
  const Clock clock = [&] { return simulator.now(); };
  std::vector<std::unique_ptr<Node>> nodes;
  for (NodeId i = 0; i < 4; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, i, clock));

  std::vector<double> raw_receipt(4, -1), atomic_delivery(4, -1);
  std::vector<std::unique_ptr<AtomicGroup>> groups;
  AtomicGroupOptions options;
  options.rdmc.block_size = 64 * 1024;
  for (NodeId m = 0; m < 4; ++m) {
    groups.push_back(std::make_unique<AtomicGroup>(
        *nodes[m], 1, std::vector<NodeId>{0, 1, 2, 3}, options,
        [&, m](std::size_t, const std::byte*, std::size_t) {
          atomic_delivery[m] = simulator.now();
        }));
  }
  auto payload = pattern(1 << 20, 3);
  ASSERT_TRUE(groups[0]->send(payload.data(), payload.size()));
  simulator.run();

  double last_receipt = 0;
  for (NodeId m = 0; m < 4; ++m) {
    ASSERT_GE(atomic_delivery[m], 0.0) << "member " << m;
    last_receipt = std::max(last_receipt, atomic_delivery[m]);
  }
  // No member may deliver before every member could have received: all
  // deliveries happen after the slowest member's receipt-driven status
  // write could reach them — in particular the earliest atomic delivery
  // must be later than the raw transfer makespan of the slowest member
  // minus epsilon. We check the weaker, exact property: every delivery
  // happens at or after the maximum *receipt* time, by re-running the raw
  // group and comparing.
  harness::SimCluster raw(sim::fractus_profile(4));
  GroupOptions raw_options;
  raw_options.block_size = 64 * 1024;
  auto& rec = raw.create_group(1, {0, 1, 2, 3}, raw_options);
  raw.node(0).send(1, nullptr, payload.size());
  raw.sim().run();
  double max_receipt = 0;
  for (std::size_t m = 1; m < 4; ++m)
    max_receipt = std::max(max_receipt, rec.delivery_times[m].back());
  for (NodeId m = 0; m < 4; ++m)
    EXPECT_GE(atomic_delivery[m] + 1e-9, max_receipt * 0.98)
        << "member " << m << " delivered before global receipt";
  groups.clear();
}

TEST(AtomicGroup, SurvivorsAgreeOnSafePrefixAfterCrash) {
  AtomicCluster cluster(4);
  AtomicGroupOptions options;
  options.rdmc.block_size = 1024;
  cluster.create_everywhere(1, {0, 1, 2, 3}, options);

  // Stream messages, then crash a receiver mid-stream.
  std::vector<std::vector<std::byte>> payloads;
  for (std::size_t i = 0; i < 30; ++i)
    payloads.push_back(pattern(20000, 100 + i));
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    cluster.group(0).send(payloads[i].data(), payloads[i].size());
    if (i == 10) cluster.fabric().crash_node(2);
  }

  // All three survivors wedge with the same safe prefix.
  ASSERT_TRUE(cluster.wait_wedged(3));
  const auto wedges = cluster.wedges();
  std::size_t safe = SIZE_MAX;
  for (const auto& [member, prefix, suspect] : wedges) {
    EXPECT_EQ(suspect, 2u);
    if (safe == SIZE_MAX) safe = prefix;
    EXPECT_EQ(prefix, safe) << "survivors disagree on the safe prefix";
  }
  // And each survivor's delivered log is exactly that prefix, in order.
  for (NodeId m : {0u, 1u, 3u}) {
    const auto log = cluster.log(m);
    ASSERT_EQ(log.size(), safe) << "member " << m;
    for (std::size_t i = 0; i < safe; ++i) {
      EXPECT_EQ(log[i].first, i);
      EXPECT_EQ(log[i].second, payloads[i]);
    }
    EXPECT_TRUE(cluster.group(m).wedged());
  }
}

TEST(AtomicGroup, RootCrashStillYieldsAgreement) {
  // The sender itself dies; the lowest-ranked *survivor* (rank 1) leads
  // the cleanup and the remaining members agree on the safe prefix.
  AtomicCluster cluster(4);
  AtomicGroupOptions options;
  options.rdmc.block_size = 1024;
  cluster.create_everywhere(1, {0, 1, 2, 3}, options);
  std::vector<std::vector<std::byte>> payloads;
  for (std::size_t i = 0; i < 12; ++i)
    payloads.push_back(pattern(30000, 500 + i));
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    cluster.group(0).send(payloads[i].data(), payloads[i].size());
    if (i == 5) cluster.fabric().crash_node(0);
  }
  ASSERT_TRUE(cluster.wait_wedged(3));
  const auto wedges = cluster.wedges();
  std::size_t safe = SIZE_MAX;
  for (const auto& [member, prefix, suspect] : wedges) {
    if (member == 0) continue;
    EXPECT_EQ(suspect, 0u);
    if (safe == SIZE_MAX) safe = prefix;
    EXPECT_EQ(prefix, safe);
  }
  for (NodeId m : {1u, 2u, 3u}) {
    const auto log = cluster.log(m);
    ASSERT_EQ(log.size(), safe) << "member " << m;
    for (std::size_t i = 0; i < safe; ++i)
      EXPECT_EQ(log[i].second, payloads[i]);
  }
}

TEST(AtomicGroup, NonRootCannotSend) {
  AtomicCluster cluster(3);
  cluster.create_everywhere(1, {0, 1, 2});
  auto p = pattern(100, 1);
  EXPECT_FALSE(cluster.group(1).send(p.data(), p.size()));
  EXPECT_FALSE(cluster.group(2).send(p.data(), p.size()));
}

TEST(AtomicGroup, AddsSmallDelayNotBandwidth) {
  // §4.6: "No loss of bandwidth is experienced, and the added delay is
  // surprisingly small." Compare raw RDMC vs atomic throughput for a
  // stream of messages on the simulator.
  auto run = [&](bool atomic) {
    sim::Simulator simulator;
    sim::Topology topo(
        sim::TopologyConfig{.num_nodes = 4, .nic_gbps = 100.0});
    fabric::SimFabric fabric(simulator, topo, {});
    const Clock clock = [&] { return simulator.now(); };
    std::vector<std::unique_ptr<Node>> nodes;
    for (NodeId i = 0; i < 4; ++i)
      nodes.push_back(std::make_unique<Node>(fabric, i, clock));
    constexpr std::size_t kCount = 6;
    const std::size_t bytes = 8 << 20;
    std::vector<std::byte> payload(bytes, std::byte{1});
    double last = 0;
    std::vector<std::unique_ptr<AtomicGroup>> groups;
    std::vector<std::vector<std::byte>> bufs(4);
    if (atomic) {
      for (NodeId m = 0; m < 4; ++m) {
        groups.push_back(std::make_unique<AtomicGroup>(
            *nodes[m], 1, std::vector<NodeId>{0, 1, 2, 3},
            AtomicGroupOptions{},
            [&last, &simulator](std::size_t, const std::byte*,
                                std::size_t) { last = simulator.now(); }));
      }
      for (std::size_t i = 0; i < kCount; ++i)
        groups[0]->send(payload.data(), payload.size());
    } else {
      for (NodeId m = 0; m < 4; ++m) {
        nodes[m]->create_group(
            1, {0, 1, 2, 3}, GroupOptions{},
            [&bufs, m](std::size_t size) {
              bufs[m].resize(size);
              return fabric::MemoryView{bufs[m].data(), size};
            },
            [&last, &simulator, m](std::byte*, std::size_t) {
              if (m != 0) last = simulator.now();
            });
      }
      for (std::size_t i = 0; i < kCount; ++i)
        nodes[0]->send(1, payload.data(), payload.size());
    }
    simulator.run();
    groups.clear();
    return last;
  };
  const double raw = run(false);
  const double atomic = run(true);
  EXPECT_GT(atomic, raw);  // there is *a* delay...
  EXPECT_LT(atomic / raw, 1.15);  // ...and it is small
}

}  // namespace
}  // namespace rdmc::derecho_lite
