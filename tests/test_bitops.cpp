#include "util/bitops.hpp"

#include <gtest/gtest.h>

namespace rdmc::util {
namespace {

TEST(Bitops, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(std::uint64_t{1} << 63), 63u);
}

TEST(Bitops, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(512), 9u);
  EXPECT_EQ(ceil_log2(513), 10u);
}

TEST(Bitops, CeilFloorRelation) {
  for (std::uint64_t x = 1; x < 10000; ++x) {
    EXPECT_LE(floor_log2(x), ceil_log2(x));
    EXPECT_LE(ceil_log2(x) - floor_log2(x), 1u);
    EXPECT_EQ(floor_log2(x) == ceil_log2(x), is_pow2(x));
  }
}

TEST(Bitops, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Bitops, TrailingZeros) {
  EXPECT_EQ(trailing_zeros(1), 0u);
  EXPECT_EQ(trailing_zeros(2), 1u);
  EXPECT_EQ(trailing_zeros(12), 2u);
  EXPECT_EQ(trailing_zeros(std::uint64_t{1} << 40), 40u);
}

TEST(Bitops, RotrBasic) {
  // rotr of 001 by 1 within 3 bits -> 100 (the paper's sigma(1,1) = 4).
  EXPECT_EQ(rotr_bits(0b001, 1, 3), 0b100u);
  EXPECT_EQ(rotr_bits(0b011, 2, 3), 0b110u);
  EXPECT_EQ(rotr_bits(0b010, 1, 3), 0b001u);
  EXPECT_EQ(rotr_bits(0b110, 0, 3), 0b110u);
  // Full rotation is identity.
  EXPECT_EQ(rotr_bits(0b101, 3, 3), 0b101u);
}

TEST(Bitops, RotlInvertsRotr) {
  for (std::uint32_t l = 1; l <= 12; ++l) {
    const std::uint32_t mask = (1u << l) - 1;
    for (std::uint32_t v = 0; v <= mask; v += 3) {
      for (std::uint32_t r = 0; r <= 2 * l; ++r) {
        EXPECT_EQ(rotl_bits(rotr_bits(v, r, l), r, l), v)
            << "l=" << l << " v=" << v << " r=" << r;
      }
    }
  }
}

TEST(Bitops, RotrPreservesPopcount) {
  for (std::uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(std::popcount(rotr_bits(v, 4, 6)), std::popcount(v));
  }
}

}  // namespace
}  // namespace rdmc::util
