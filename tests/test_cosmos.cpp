// The synthetic Cosmos trace must reproduce the statistics the paper
// discloses (§5.2.2): 3-node writes over 15 hosts, sizes from hundreds of
// bytes to hundreds of MB, median 12 MB, mean 29 MB, 455 distinct groups.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/cosmos.hpp"

namespace rdmc::workload {
namespace {

TEST(Cosmos, GroupCountIs455) {
  CosmosTraceGenerator gen;
  EXPECT_EQ(gen.num_groups(), 455u);  // C(15,3)
}

TEST(Cosmos, GroupUnrankingRoundTrips) {
  CosmosTraceGenerator gen;
  std::set<std::array<std::uint32_t, 3>> seen;
  for (std::uint32_t g = 0; g < gen.num_groups(); ++g) {
    const auto combo = gen.group_members(g);
    EXPECT_LT(combo[0], combo[1]);
    EXPECT_LT(combo[1], combo[2]);
    EXPECT_LT(combo[2], 15u);
    EXPECT_TRUE(seen.insert(combo).second) << "duplicate combination";
  }
  EXPECT_EQ(seen.size(), 455u);
}

TEST(Cosmos, WritesReferenceValidGroups) {
  CosmosTraceGenerator gen;
  for (int i = 0; i < 2000; ++i) {
    const CosmosWrite w = gen.next();
    ASSERT_LT(w.group_index, gen.num_groups());
    EXPECT_EQ(gen.group_members(w.group_index), w.replicas);
  }
}

TEST(Cosmos, SizeDistributionMatchesPaper) {
  CosmosTraceGenerator gen;
  const auto trace = gen.generate(60000);
  std::vector<double> sizes;
  double sum = 0;
  for (const auto& w : trace) {
    sizes.push_back(static_cast<double>(w.bytes));
    sum += static_cast<double>(w.bytes);
    ASSERT_GE(w.bytes, gen.config().min_bytes);
    ASSERT_LE(w.bytes, gen.config().max_bytes);
  }
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  const double mean = sum / static_cast<double>(sizes.size());
  // Paper: median 12 MB, mean 29 MB. The max clamp pulls the mean down a
  // few percent; accept +-15%.
  EXPECT_NEAR(median, 12e6, 12e6 * 0.1);
  EXPECT_NEAR(mean, 29e6, 29e6 * 0.15);
  // "object sizes varying from hundreds of bytes to hundreds of MB".
  EXPECT_LT(sizes.front(), 1e5);
  EXPECT_GT(sizes.back(), 2e8);
}

TEST(Cosmos, ReplicasAreDistinctAndUniform) {
  CosmosTraceGenerator gen;
  std::vector<int> host_hits(15, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const CosmosWrite w = gen.next();
    EXPECT_NE(w.replicas[0], w.replicas[1]);
    EXPECT_NE(w.replicas[1], w.replicas[2]);
    for (auto r : w.replicas) ++host_hits[r];
  }
  // Each host appears in ~3/15 of writes.
  const double expect = 3.0 * n / 15.0;
  for (int h = 0; h < 15; ++h)
    EXPECT_NEAR(host_hits[h], expect, expect * 0.1) << "host " << h;
}

TEST(Cosmos, Deterministic) {
  CosmosTraceGenerator a, b;
  for (int i = 0; i < 100; ++i) {
    const auto wa = a.next(), wb = b.next();
    EXPECT_EQ(wa.bytes, wb.bytes);
    EXPECT_EQ(wa.replicas, wb.replicas);
  }
}

TEST(Cosmos, CustomHostCount) {
  CosmosConfig cfg;
  cfg.num_hosts = 6;
  CosmosTraceGenerator gen(cfg);
  EXPECT_EQ(gen.num_groups(), 20u);  // C(6,3)
  for (int i = 0; i < 200; ++i) {
    const auto w = gen.next();
    EXPECT_LT(w.replicas[2], 6u);
    EXPECT_LT(w.group_index, 20u);
  }
}

}  // namespace
}  // namespace rdmc::workload
