// Failure handling across the stack: the §3 reliability contract's item 6
// ("failures are reported to every survivor"), the unified FaultInjector
// semantics on all three backends, FaultPlan determinism, and the §4.6
// recovery driver + chaos invariants.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "fabric/fault_plan.hpp"
#include "fabric/mem_fabric.hpp"
#include "fabric/tcp_fabric.hpp"
#include "harness/chaos.hpp"
#include "harness/recovery.hpp"
#include "harness/sim_harness.hpp"
#include "util/random.hpp"

namespace rdmc {
namespace {

using namespace std::chrono_literals;

std::vector<NodeId> all_members(std::size_t n) {
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  return members;
}

// ------------------------------------------------ sim: schedule matrix ----

struct CrashCase {
  const char* name;
  sched::Algorithm algorithm;
  bool hybrid;
  std::size_t victim_rank;  // 0 = root, 1 = interior relay, n-1 = leaf
};

class SimCrash : public ::testing::TestWithParam<CrashCase> {};

/// Crash one member mid-transfer; every survivor must observe the failure
/// exactly once (fail-stop: the victim observes nothing), and nobody may
/// deliver the interrupted message twice.
TEST_P(SimCrash, EverySurvivorNotifiedExactlyOnce) {
  const CrashCase c = GetParam();
  constexpr std::size_t kN = 8;
  harness::SimCluster cluster(sim::fractus_profile(16));
  GroupOptions options;
  options.block_size = 64 << 10;
  options.algorithm = c.algorithm;
  if (c.hybrid)
    options.hybrid_racks = std::vector<std::uint32_t>{0, 0, 0, 0, 1, 1, 1, 1};
  const auto members = all_members(kN);
  auto& rec = cluster.create_group(1, members, options);

  const NodeId victim = members[c.victim_rank];
  cluster.sim().after(100e-6,
                      [&] { cluster.fabric().crash_node(victim); });
  cluster.node(0).send(1, nullptr, 4 << 20);
  cluster.run_to_quiescence();

  std::map<NodeId, std::size_t> notices;
  for (const auto& obs : rec.failure_log) ++notices[obs.by];
  EXPECT_EQ(notices.count(victim), 0u)
      << "fail-stop violated: the crashed node ran its failure callback";
  for (NodeId m : members) {
    if (m == victim) continue;
    EXPECT_EQ(notices[m], 1u) << "survivor " << m << " saw "
                              << notices[m] << " notices";
  }
  for (std::size_t i = 0; i < members.size(); ++i)
    EXPECT_LE(rec.delivery_times[i].size(), 1u) << "duplicate delivery";
  EXPECT_GT(cluster.fabric().fault_counters().crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, SimCrash,
    ::testing::Values(
        CrashCase{"binomial_root", sched::Algorithm::kBinomialPipeline,
                  false, 0},
        CrashCase{"binomial_interior", sched::Algorithm::kBinomialPipeline,
                  false, 1},
        CrashCase{"binomial_leaf", sched::Algorithm::kBinomialPipeline,
                  false, 7},
        CrashCase{"chain_root", sched::Algorithm::kChain, false, 0},
        CrashCase{"chain_interior", sched::Algorithm::kChain, false, 4},
        CrashCase{"chain_leaf", sched::Algorithm::kChain, false, 7},
        CrashCase{"sequential_root", sched::Algorithm::kSequential, false,
                  0},
        CrashCase{"sequential_interior", sched::Algorithm::kSequential,
                  false, 1},
        CrashCase{"sequential_leaf", sched::Algorithm::kSequential, false,
                  7},
        CrashCase{"hybrid_root", sched::Algorithm::kBinomialPipeline, true,
                  0},
        CrashCase{"hybrid_interior", sched::Algorithm::kBinomialPipeline,
                  true, 1},
        CrashCase{"hybrid_leaf", sched::Algorithm::kBinomialPipeline, true,
                  7}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SimFailure, LinkBreakMidBlockNotifiesWholeGroup) {
  constexpr std::size_t kN = 8;
  harness::SimCluster cluster(sim::fractus_profile(16));
  GroupOptions options;
  options.block_size = 64 << 10;
  auto& rec = cluster.create_group(1, all_members(kN), options);

  // Break the root->rank1 link while its blocks are in flight.
  cluster.sim().after(100e-6, [&] { cluster.fabric().break_link(0, 1); });
  cluster.node(0).send(1, nullptr, 4 << 20);
  cluster.run_to_quiescence();

  std::map<NodeId, std::size_t> notices;
  for (const auto& obs : rec.failure_log) ++notices[obs.by];
  for (NodeId m : all_members(kN))
    EXPECT_EQ(notices[m], 1u) << "member " << m;
  EXPECT_GT(cluster.fabric().fault_counters().links_broken, 0u);
  EXPECT_GT(cluster.fabric().fault_counters().disconnects_delivered, 0u);
}

// ------------------------------------------------ fault injector timing ---

TEST(SimFaultInjector, DegradeScalesAndExpires) {
  sim::Simulator sim;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  fabric::SimFabric fabric(sim, topo, {});
  double recv_at = -1;
  fabric.endpoint(1).set_completion_handler(
      [&](const fabric::Completion&) { recv_at = sim.now(); });
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});
  auto* qp0 = fabric.connect(0, 1, 0);
  auto* qp1 = fabric.connect(1, 0, 0);
  const auto bytes = static_cast<std::size_t>(100.0 * 1e9 / 8.0);  // 1 s
  // Half bandwidth for the first 0.5 s: 0.5 s covers 0.25 of the payload,
  // the remaining 0.75 runs at full rate -> ~1.25 s total.
  ASSERT_TRUE(fabric.degrade_link(0, 1, 0.5, 0.5));
  qp1->post_recv(fabric::MemoryView{nullptr, bytes}, 1);
  qp0->post_send(fabric::MemoryView{nullptr, bytes}, 2, 0);
  sim.run();
  EXPECT_NEAR(recv_at, 1.25, 0.05);
  EXPECT_EQ(fabric.fault_counters().degrades, 1u);
}

TEST(SimFaultInjector, SlowNodeScalesSoftwareCosts) {
  auto run_with_slowdown = [](bool slow) {
    sim::Simulator sim;
    sim::Topology topo(
        sim::TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
    auto options = fabric::SimFabric::options_from(sim::fractus_profile(2));
    fabric::SimFabric fabric(sim, topo, options);
    fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});
    fabric.endpoint(1).set_completion_handler([](const fabric::Completion&) {});
    auto* qp0 = fabric.connect(0, 1, 0);
    auto* qp1 = fabric.connect(1, 0, 0);
    if (slow) {
      EXPECT_TRUE(fabric.slow_node(1, 10.0, 1.0));
    }
    for (std::uint64_t i = 0; i < 16; ++i) {
      qp1->post_recv(fabric::MemoryView{nullptr, 4096}, i);
      qp0->post_send(fabric::MemoryView{nullptr, 4096}, i, 0);
    }
    sim.run();
    return fabric.cpu_busy_seconds(1);
  };
  const double base = run_with_slowdown(false);
  const double slowed = run_with_slowdown(true);
  ASSERT_GT(base, 0.0);
  EXPECT_NEAR(slowed / base, 10.0, 0.5);
}

TEST(SimFaultInjector, ConnectToCrashedNodeIsBornBroken) {
  sim::Simulator sim;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  fabric::SimFabric fabric(sim, topo, {});
  std::size_t disconnects = 0;
  fabric.endpoint(0).set_completion_handler(
      [&](const fabric::Completion& c) {
        disconnects += c.opcode == fabric::WcOpcode::kDisconnect;
      });
  fabric.crash_node(1);
  EXPECT_TRUE(fabric.faults().crashed(1));
  auto* qp = fabric.connect(0, 1, 0);
  sim.run();
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(qp->post_send(fabric::MemoryView{nullptr, 16}, 1, 0),
            fabric::PostResult::kQpBroken);
  EXPECT_EQ(disconnects, 1u);
}

TEST(PostResult, LocalArgumentChecks) {
  sim::Simulator sim;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  fabric::SimFabric fabric(sim, topo, {});
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});
  fabric.endpoint(1).set_completion_handler([](const fabric::Completion&) {});
  auto* qp = fabric.connect(0, 1, 0);
  // A real (non-phantom) payload must fit the 32-bit byte_len field.
  auto* fake = reinterpret_cast<std::byte*>(0x1000);
  EXPECT_EQ(qp->post_send(fabric::MemoryView{fake, 5ull << 30}, 1, 0),
            fabric::PostResult::kBadArgs);
  // Window writes must not wrap the 64-bit window address space.
  std::byte buf[64];
  EXPECT_EQ(qp->post_window_write(0, ~std::uint64_t{0} - 8,
                                  fabric::MemoryView{buf, sizeof buf}, 0, 2,
                                  true),
            fabric::PostResult::kWindowViolation);
}

// ------------------------------------------------ fault plans -------------

TEST(FaultPlan, DeterministicPerSeed) {
  fabric::FaultPlanSpec spec;
  spec.nodes = all_members(16);
  spec.protect = {0};
  spec.max_events = 4;
  const auto a = fabric::FaultPlan::random(42, spec);
  const auto b = fabric::FaultPlan::random(42, spec);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].peer, b.events()[i].peer);
    EXPECT_EQ(a.events()[i].factor, b.events()[i].factor);
  }
  EXPECT_EQ(a.describe(), b.describe());
  const auto c = fabric::FaultPlan::random(43, spec);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, RespectsProtectionAndSurvivorFloor) {
  fabric::FaultPlanSpec spec;
  spec.nodes = all_members(6);
  spec.protect = {0};
  spec.min_survivors = 4;
  spec.max_events = 8;
  spec.crash_weight = 10.0;  // crash-heavy mix to stress the limits
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto plan = fabric::FaultPlan::random(seed, spec);
    const auto crashed = plan.crashed_nodes();
    EXPECT_LE(crashed.size(), spec.nodes.size() - spec.min_survivors);
    for (NodeId n : crashed) EXPECT_NE(n, 0u);
    for (const auto& e : plan.events()) {
      EXPECT_GE(e.at, 0.0);
      EXPECT_LT(e.at, spec.window_s);
    }
  }
}

// ------------------------------------------------ §4.6 recovery driver ----

TEST(Recovery, CrashMidTransferReformsAndResumes) {
  harness::SimCluster cluster(sim::fractus_profile(8));
  harness::RecoveryConfig config;
  config.members = all_members(8);
  config.group_options.block_size = 32 << 10;
  config.messages = 3;
  config.message_bytes = 256 << 10;
  cluster.sim().after(100e-6, [&] { cluster.fabric().crash_node(5); });

  harness::RecoveryDriver driver(cluster, config);
  const auto result = driver.run();
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? ""
                                 : result.violations.front());
  EXPECT_EQ(result.reforms, 1u);
  EXPECT_FALSE(result.root_lost);
  EXPECT_EQ(result.final_members.size(), 7u);
  for (NodeId n : result.final_members) EXPECT_NE(n, 5u);
  EXPECT_EQ(cluster.perf_stats().reforms, 1u);
  EXPECT_GT(cluster.perf_stats().breaks_delivered, 0u);
}

TEST(Recovery, RootCrashIsReportedAsRootLoss) {
  harness::SimCluster cluster(sim::fractus_profile(8));
  harness::RecoveryConfig config;
  config.members = all_members(4);
  config.group_options.block_size = 32 << 10;
  config.messages = 2;
  config.message_bytes = 256 << 10;
  cluster.sim().after(50e-6, [&] { cluster.fabric().crash_node(0); });

  harness::RecoveryDriver driver(cluster, config);
  const auto result = driver.run();
  EXPECT_TRUE(result.root_lost);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front();
}

TEST(Chaos, SmokeSweepHoldsInvariants) {
  harness::ChaosSpec spec;
  spec.group_size = 8;
  spec.messages = 2;
  spec.message_bytes = 256 << 10;
  spec.group_options.block_size = 32 << 10;
  spec.faults.max_events = 2;
  const auto result = harness::run_chaos_campaign(1, 12, spec);
  EXPECT_EQ(result.passed, result.seeds_run);
  EXPECT_GT(result.fault_hit, 0u);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << "seed " << f.seed << " failed: "
                  << (f.violations.empty() ? "?" : f.violations.front())
                  << "\nplan:\n"
                  << f.plan;
  }
}

// ------------------------------------------------ threaded backends -------

/// Minimal threaded cluster with per-member failure counting.
class MemCluster {
 public:
  explicit MemCluster(std::size_t n) : fabric_(n), inboxes_(n) {
    for (std::size_t i = 0; i < n; ++i)
      nodes_.push_back(
          std::make_unique<Node>(fabric_, static_cast<NodeId>(i)));
  }

  ~MemCluster() {
    nodes_.clear();
    fabric_.stop();
  }

  void create_group_everywhere(GroupId id, const std::vector<NodeId>& members,
                               GroupOptions options) {
    for (NodeId m : members) {
      ASSERT_TRUE(nodes_[m]->create_group(
          id, members, options,
          [this, m](std::size_t size) {
            inboxes_[m].resize(size);
            return fabric::MemoryView{inboxes_[m].data(), size};
          },
          [this, m](std::byte*, std::size_t) {
            std::lock_guard lock(mutex_);
            ++delivered_[m];
            cv_.notify_all();
          },
          [this, m](GroupId, NodeId) {
            std::lock_guard lock(mutex_);
            ++failures_[m];
            cv_.notify_all();
          }));
    }
  }

  bool wait_failure_on(const std::vector<NodeId>& nodes,
                       std::chrono::seconds timeout = 20s) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] {
      for (NodeId n : nodes)
        if (failures_[n] == 0) return false;
      return true;
    });
  }

  std::size_t failures_on(NodeId n) {
    std::lock_guard lock(mutex_);
    return failures_[n];
  }

  Node& node(std::size_t i) { return *nodes_[i]; }
  fabric::MemFabric& fabric() { return fabric_; }

 private:
  fabric::MemFabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<std::byte>> inboxes_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<NodeId, std::size_t> delivered_;
  std::map<NodeId, std::size_t> failures_;
};

TEST(MemFailure, CrashMidTransferNotifiesSurvivorsExactlyOnce) {
  constexpr std::size_t kN = 5;
  MemCluster cluster(kN);
  GroupOptions options;
  options.block_size = 64 << 10;
  cluster.create_group_everywhere(1, all_members(kN), options);

  std::vector<std::byte> payload(16 << 20);
  ASSERT_TRUE(cluster.node(0).send(1, payload.data(), payload.size()));
  cluster.fabric().crash_node(3);
  ASSERT_TRUE(cluster.wait_failure_on({0, 1, 2, 4}));
  std::this_thread::sleep_for(100ms);  // settle: no extra notices may arrive
  for (NodeId n : {0u, 1u, 2u, 4u})
    EXPECT_EQ(cluster.failures_on(n), 1u) << "member " << n;
  EXPECT_TRUE(cluster.fabric().crashed(3));
}

TEST(MemFailure, LinkBreakMidTransferNotifiesEveryone) {
  constexpr std::size_t kN = 5;
  MemCluster cluster(kN);
  GroupOptions options;
  options.block_size = 64 << 10;
  cluster.create_group_everywhere(1, all_members(kN), options);

  std::vector<std::byte> payload(16 << 20);
  ASSERT_TRUE(cluster.node(0).send(1, payload.data(), payload.size()));
  cluster.fabric().break_link(0, 1);
  ASSERT_TRUE(cluster.wait_failure_on({0, 1, 2, 3, 4}));
  std::this_thread::sleep_for(100ms);  // settle: no extra notices may arrive
  for (NodeId n : all_members(kN))
    EXPECT_EQ(cluster.failures_on(n), 1u) << "member " << n;
}

TEST(MemFailure, ImmediateModeInjectorContract) {
  fabric::MemFabric fabric(2);
  // No bandwidth model: degradations are accepted-and-ignored.
  EXPECT_FALSE(fabric.faults().degrade_link(0, 1, 0.5, 1.0));
  // Slowdowns are real dispatch delays and validate their arguments.
  EXPECT_FALSE(fabric.faults().slow_node(0, 0.5, 1.0));
  EXPECT_TRUE(fabric.faults().slow_node(0, 4.0, 0.05));
  fabric.stop();
}

TEST(TcpFailure, LinkBreakMidTransferNotifiesGroup) {
  constexpr std::size_t kN = 3;
  std::vector<fabric::TcpAddress> addresses(kN);  // loopback, ephemeral
  fabric::TcpFabric fabric(addresses, all_members(kN));
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kN; ++i)
    nodes.push_back(
        std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  std::mutex mutex;
  std::condition_variable cv;
  std::map<NodeId, std::size_t> failures;
  std::vector<std::vector<std::byte>> inboxes(kN);
  GroupOptions options;
  options.block_size = 256 << 10;
  for (NodeId m : all_members(kN)) {
    ASSERT_TRUE(nodes[m]->create_group(
        1, all_members(kN), options,
        [&, m](std::size_t size) {
          inboxes[m].resize(size);
          return fabric::MemoryView{inboxes[m].data(), size};
        },
        [](std::byte*, std::size_t) {},
        [&, m](GroupId, NodeId) {
          std::lock_guard lock(mutex);
          ++failures[m];
          cv.notify_all();
        }));
  }

  std::vector<std::byte> payload(32 << 20);
  ASSERT_TRUE(nodes[0]->send(1, payload.data(), payload.size()));
  fabric.break_link(0, 1);
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, 20s, [&] {
      return failures[0] > 0 && failures[1] > 0 && failures[2] > 0;
    }));
  }
  std::this_thread::sleep_for(100ms);
  {
    std::lock_guard lock(mutex);
    for (NodeId n : all_members(kN))
      EXPECT_EQ(failures[n], 1u) << "member " << n;
  }
  nodes.clear();
  fabric.stop();
}

}  // namespace
}  // namespace rdmc
