// Exact fill + memoization properties of the FlowNetwork allocator.
//
// Three algorithms can compute the same max-min allocation: the exact
// bottleneck-elimination fill (production), the progressive lazy-heap
// water filling (kept as the oracle) and a from-scratch full fill over
// every active flow. This suite drives randomized churn — flow starts,
// aborts, pair-cap and NIC mutations via topology_changed() — and demands
// all three agree at every checkpoint; with cross-checking on, every
// incremental step is additionally validated inside the allocator itself
// (divergence aborts the process).
//
// The memoization layer is tested separately on workloads constructed to
// repeat allocation states exactly: hits must be served (and, under
// cross-check, replayed bit-identically against a fresh fill), a link
// degradation must invalidate the cache, and the deterministic auto-off
// must disarm a memo whose fingerprints never repeat — then re-arm via
// set_memoize.
#include <gtest/gtest.h>

#include <vector>

#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "util/random.hpp"

namespace rdmc::sim {
namespace {

TopologyConfig racked_config(std::size_t nodes) {
  TopologyConfig cfg;
  cfg.num_nodes = nodes;
  cfg.nic_gbps = 100.0;
  cfg.nodes_per_rack = nodes >= 8 ? nodes / 2 : 0;
  cfg.rack_uplink_gbps = 150.0;
  return cfg;
}

// Randomized churn: starts, aborts and capacity mutations interleaved,
// with the incremental allocation checked against both full-recompute
// algorithms after every step.
TEST(FlowMemoProperty, ExactMatchesProgressiveAndFullUnderChurn) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull, 91ull}) {
    util::Rng rng(seed);
    const std::size_t nodes = 6 + seed % 7;
    Simulator sim;
    Topology topo(racked_config(nodes));
    FlowNetwork net(sim, topo);
    net.set_cross_check(true);
    net.set_memo_min_flows(1);  // every fill goes through the memo path

    std::vector<FlowId> live;
    for (int step = 0; step < 120; ++step) {
      const double dice = rng.uniform01();
      if (dice < 0.5 || live.empty()) {
        NodeId src = static_cast<NodeId>(rng.uniform(0, nodes - 1));
        NodeId dst = static_cast<NodeId>(rng.uniform(0, nodes - 1));
        if (src == dst) dst = (dst + 1) % nodes;
        live.push_back(net.start_flow(src, dst, 1e13, [](SimTime) {}));
      } else if (dice < 0.75) {
        const std::size_t victim = rng.uniform(0, live.size() - 1);
        net.abort_flow(live[victim]);
        live.erase(live.begin() + victim);
      } else if (dice < 0.9) {
        NodeId a = static_cast<NodeId>(rng.uniform(0, nodes - 1));
        NodeId b = static_cast<NodeId>(rng.uniform(0, nodes - 1));
        if (a == b) b = (b + 1) % nodes;
        if (rng.uniform01() < 0.5)
          topo.set_pair_cap(a, b, 2.0 + 60.0 * rng.uniform01());
        else
          topo.clear_pair_cap(a, b);
        net.topology_changed();
      } else {
        NodeId n = static_cast<NodeId>(rng.uniform(0, nodes - 1));
        topo.set_node_nic(n, 40.0 + 80.0 * rng.uniform01());
        net.topology_changed();
      }
      // Forces the pending reallocation, then compares the incremental
      // rates against from-scratch fills by both algorithms.
      ASSERT_TRUE(net.rates_match_full_recompute(1e-9, /*exact=*/false))
          << "progressive oracle diverged (seed " << seed << ", step "
          << step << ")";
      ASSERT_TRUE(net.rates_match_full_recompute(1e-9, /*exact=*/true))
          << "exact fill diverged (seed " << seed << ", step " << step
          << ")";
    }
    for (const FlowId id : live) net.abort_flow(id);
    sim.run();
  }
}

// A start/abort cycle that returns the network to the identical state must
// be answered from the memo, and (cross-check on) every hit is replayed
// against a fresh fill bit-for-bit inside the allocator.
TEST(FlowMemo, HitsOnRepeatingStates) {
  Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 8;
  cfg.nic_gbps = 100.0;
  Topology topo(cfg);
  FlowNetwork net(sim, topo);
  net.set_cross_check(true);
  net.set_memo_min_flows(1);

  // Four flows sharing the tx capacity of node 0: a stable component.
  std::vector<FlowId> base;
  for (NodeId dst = 1; dst <= 4; ++dst)
    base.push_back(net.start_flow(0, dst, 1e13, [](SimTime) {}));
  (void)net.flow_rate(base.front());

  const std::uint64_t misses_before = net.counters().memo_misses;
  const int cycles = 20;
  for (int i = 0; i < cycles; ++i) {
    // Start a fifth flow into the same bottleneck, then remove it: both
    // reallocations after the first cycle re-create states already seen.
    const FlowId extra = net.start_flow(0, 5, 1e13, [](SimTime) {});
    ASSERT_GT(net.flow_rate(extra), 0.0);
    net.abort_flow(extra);
    ASSERT_GT(net.flow_rate(base.front()), 0.0);
  }
  const auto& c = net.counters();
  // First cycle fills fresh (2 misses); every later cycle hits both states.
  EXPECT_GE(c.memo_hits, static_cast<std::uint64_t>(2 * (cycles - 1)));
  EXPECT_LE(c.memo_misses - misses_before, 4u);

  for (const FlowId id : base) net.abort_flow(id);
  sim.run();
}

// Shape-level keying: an isomorphic component on a *different* set of nodes
// must be served from the memo — no absolute node or resource id leaks into
// the fingerprint. This is where the hits in a steady-state pipeline come
// from: every schedule step runs the same transfer shape over rotated node
// pairs.
TEST(FlowMemo, TranslatedShapeHits) {
  Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 32;
  cfg.nic_gbps = 100.0;
  Topology topo(cfg);
  FlowNetwork net(sim, topo);
  net.set_cross_check(true);  // every hit replayed bit-for-bit
  net.set_memo_min_flows(1);

  // Fan-out of 4 from node 0: one component, cached on first fill.
  std::vector<FlowId> first;
  for (NodeId dst = 1; dst <= 4; ++dst)
    first.push_back(net.start_flow(0, dst, 1e13, [](SimTime) {}));
  (void)net.flow_rate(first.front());
  const std::uint64_t misses_after_first = net.counters().memo_misses;
  for (const FlowId id : first) net.abort_flow(id);
  (void)net.active_flows();

  // The identical fan-out shape translated to disjoint nodes 10 -> 11..14:
  // same kinds, degrees, capacities and incidence, different absolute ids.
  std::vector<FlowId> second;
  for (NodeId dst = 11; dst <= 14; ++dst)
    second.push_back(net.start_flow(10, dst, 1e13, [](SimTime) {}));
  (void)net.flow_rate(second.front());
  EXPECT_GT(net.counters().memo_hits, 0u);
  EXPECT_EQ(net.counters().memo_misses, misses_after_first);
  // And the translated hit replays to the exact fair share of the tx NIC.
  for (const FlowId id : second)
    EXPECT_DOUBLE_EQ(net.flow_rate(id), topo.node_tx_Bps(10) / 4.0);

  for (const FlowId id : second) net.abort_flow(id);
  sim.run();
}

// A capacity mutation invalidates the cache: the same component shape must
// be refilled fresh (and re-cached) after a link degrade.
TEST(FlowMemo, LinkDegradeInvalidates) {
  Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 8;
  cfg.nic_gbps = 100.0;
  Topology topo(cfg);
  FlowNetwork net(sim, topo);
  net.set_cross_check(true);
  net.set_memo_min_flows(1);

  std::vector<FlowId> base;
  for (NodeId dst = 1; dst <= 4; ++dst)
    base.push_back(net.start_flow(0, dst, 1e13, [](SimTime) {}));
  (void)net.flow_rate(base.front());

  // Warm the cache with a repeating start/abort cycle.
  for (int i = 0; i < 4; ++i) {
    const FlowId extra = net.start_flow(0, 5, 1e13, [](SimTime) {});
    (void)net.flow_rate(extra);
    net.abort_flow(extra);
    (void)net.flow_rate(base.front());
  }
  ASSERT_GT(net.counters().memo_hits, 0u);
  const std::uint64_t hits_before = net.counters().memo_hits;
  const std::uint64_t misses_before = net.counters().memo_misses;

  // Degrade the 0->5 link and replay the cycle: the old cached rates are
  // for the undegraded capacities, so the first post-degrade fills must be
  // misses, and the allocation must still verify against a full recompute.
  topo.set_pair_cap(0, 5, 10.0);
  net.topology_changed();
  const FlowId extra = net.start_flow(0, 5, 1e13, [](SimTime) {});
  ASSERT_GT(net.flow_rate(extra), 0.0);
  ASSERT_TRUE(net.rates_match_full_recompute(1e-9));
  EXPECT_EQ(net.counters().memo_hits, hits_before);
  EXPECT_GT(net.counters().memo_misses, misses_before);

  // The degraded states now repeat and are cacheable again.
  net.abort_flow(extra);
  (void)net.flow_rate(base.front());
  for (int i = 0; i < 3; ++i) {
    const FlowId e2 = net.start_flow(0, 5, 1e13, [](SimTime) {});
    (void)net.flow_rate(e2);
    net.abort_flow(e2);
    (void)net.flow_rate(base.front());
  }
  EXPECT_GT(net.counters().memo_hits, hits_before);

  for (const FlowId id : base) net.abort_flow(id);
  sim.run();
}

// The deterministic auto-off: a workload whose fingerprints never repeat
// stops paying for fingerprinting after the probation window, and
// set_memoize(true) re-arms the cache.
TEST(FlowMemo, AutoDisableAfterProbationAndRearm) {
  Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 72;  // 72*71 = 5112 distinct pairs > the probation window
  cfg.nic_gbps = 100.0;
  Topology topo(cfg);
  // Fingerprints are shape-level (no absolute ids), so identical NICs would
  // make every pair the *same* single-flow shape. Distinct per-node NIC
  // rates make each (src, dst) component a distinct shape instead.
  for (NodeId n = 0; n < 72; ++n)
    topo.set_node_nic(n, 100.0 + 0.125 * static_cast<double>(n));
  FlowNetwork net(sim, topo);
  net.set_cross_check(false);  // 5k full validations would dominate runtime
  net.set_memo_min_flows(1);

  // Every (src, dst) pair is a distinct single-flow component: all misses.
  std::uint64_t last_misses = 0;
  for (NodeId src = 0; src < 72; ++src) {
    for (NodeId dst = 0; dst < 72; ++dst) {
      if (src == dst) continue;
      const FlowId id = net.start_flow(src, dst, 1e13, [](SimTime) {});
      (void)net.flow_rate(id);
      net.abort_flow(id);
      (void)net.active_flows();
    }
    last_misses = net.counters().memo_misses;
  }
  EXPECT_EQ(net.counters().memo_hits, 0u);
  // The miss counter froze at the probation threshold: fills after the
  // auto-off bypass fingerprinting entirely.
  EXPECT_LT(last_misses, 5112u);
  const std::uint64_t frozen = net.counters().memo_misses;
  const FlowId a = net.start_flow(0, 1, 1e13, [](SimTime) {});
  (void)net.flow_rate(a);
  net.abort_flow(a);
  const FlowId b = net.start_flow(0, 1, 1e13, [](SimTime) {});
  (void)net.flow_rate(b);
  EXPECT_EQ(net.counters().memo_misses, frozen);
  EXPECT_EQ(net.counters().memo_hits, 0u);

  // Re-arm: repeating states are served from the cache again.
  net.set_memoize(true);
  net.abort_flow(b);
  for (int i = 0; i < 3; ++i) {
    const FlowId id = net.start_flow(0, 1, 1e13, [](SimTime) {});
    (void)net.flow_rate(id);
    net.abort_flow(id);
  }
  EXPECT_GT(net.counters().memo_hits, 0u);
  sim.run();
}

}  // namespace
}  // namespace rdmc::sim
