// Tests for the max-min fair flow model — the property the whole
// evaluation leans on (fair sharing, duplex NICs, TOR saturation).
#include <gtest/gtest.h>

#include "sim/flow_network.hpp"

namespace rdmc::sim {
namespace {

constexpr double kGbps = 1e9 / 8.0;  // bytes/sec per Gb/s

struct Fixture {
  explicit Fixture(TopologyConfig cfg) : topo(cfg), net(sim, topo) {}
  Simulator sim;
  Topology topo;
  FlowNetwork net;
};

TEST(FlowNetwork, SingleFlowAtLineRate) {
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  double done_at = -1;
  f.net.start_flow(0, 1, 100.0 * kGbps, [&](SimTime t) { done_at = t; });
  f.sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);  // 100 Gb moved at 100 Gb/s
}

TEST(FlowNetwork, TwoFlowsShareTxPort) {
  // Two flows out of node 0: the tx port halves each.
  Fixture f(TopologyConfig{.num_nodes = 3, .nic_gbps = 100.0});
  double t1 = -1, t2 = -1;
  f.net.start_flow(0, 1, 50.0 * kGbps, [&](SimTime t) { t1 = t; });
  f.net.start_flow(0, 2, 50.0 * kGbps, [&](SimTime t) { t2 = t; });
  f.sim.run();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_NEAR(t2, 1.0, 1e-9);
}

TEST(FlowNetwork, FullDuplexNoInterference) {
  // A->B and B->A use opposite port directions: both at line rate.
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  double t1 = -1, t2 = -1;
  f.net.start_flow(0, 1, 100.0 * kGbps, [&](SimTime t) { t1 = t; });
  f.net.start_flow(1, 0, 100.0 * kGbps, [&](SimTime t) { t2 = t; });
  f.sim.run();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_NEAR(t2, 1.0, 1e-9);
}

TEST(FlowNetwork, RxPortBottleneck) {
  // Two senders into one receiver: rx port is the bottleneck.
  Fixture f(TopologyConfig{.num_nodes = 3, .nic_gbps = 100.0});
  double t1 = -1, t2 = -1;
  f.net.start_flow(0, 2, 50.0 * kGbps, [&](SimTime t) { t1 = t; });
  f.net.start_flow(1, 2, 50.0 * kGbps, [&](SimTime t) { t2 = t; });
  f.sim.run();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_NEAR(t2, 1.0, 1e-9);
}

TEST(FlowNetwork, RateRecomputedOnDeparture) {
  // A short and a long flow share a port; after the short one finishes the
  // long one speeds up to line rate.
  Fixture f(TopologyConfig{.num_nodes = 3, .nic_gbps = 100.0});
  double t_short = -1, t_long = -1;
  f.net.start_flow(0, 1, 25.0 * kGbps, [&](SimTime t) { t_short = t; });
  f.net.start_flow(0, 2, 75.0 * kGbps, [&](SimTime t) { t_long = t; });
  f.sim.run();
  // Short: 25 Gb at 50 Gb/s = 0.5 s. Long: 25 Gb at 50 Gb/s then 50 Gb at
  // 100 Gb/s = 0.5 + 0.5 = 1.0 s.
  EXPECT_NEAR(t_short, 0.5, 1e-9);
  EXPECT_NEAR(t_long, 1.0, 1e-9);
}

TEST(FlowNetwork, PairCapSlowLink) {
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  f.topo.set_pair_cap(0, 1, 50.0);
  double done = -1;
  f.net.start_flow(0, 1, 50.0 * kGbps, [&](SimTime t) { done = t; });
  f.sim.run();
  EXPECT_NEAR(done, 1.0, 1e-9);  // capped at 50 Gb/s
}

TEST(FlowNetwork, OversubscribedTorSaturates) {
  // Two racks of 4, uplink 100 Gb/s, NICs 100 Gb/s. Four inter-rack flows
  // from distinct sources share the uplink: 25 Gb/s each.
  TopologyConfig cfg;
  cfg.num_nodes = 8;
  cfg.nic_gbps = 100.0;
  cfg.nodes_per_rack = 4;
  cfg.rack_uplink_gbps = 100.0;
  Fixture f(cfg);
  std::vector<double> done(4, -1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    f.net.start_flow(i, 4 + i, 25.0 * kGbps,
                     [&, i](SimTime t) { done[i] = t; });
  }
  f.sim.run();
  for (double t : done) EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST(FlowNetwork, IntraRackUnaffectedByTor) {
  TopologyConfig cfg;
  cfg.num_nodes = 8;
  cfg.nic_gbps = 100.0;
  cfg.nodes_per_rack = 4;
  cfg.rack_uplink_gbps = 10.0;  // tiny uplink
  Fixture f(cfg);
  double t_intra = -1;
  f.net.start_flow(0, 1, 100.0 * kGbps, [&](SimTime t) { t_intra = t; });
  f.sim.run();
  EXPECT_NEAR(t_intra, 1.0, 1e-9);  // full rate inside the rack
}

TEST(FlowNetwork, MaxMinNotEqualSplit) {
  // Flows: A: 0->1, B: 0->2, C: 3->2. Port 0 tx and port 2 rx both have
  // capacity 100 with two flows each. Max-min: all flows get 50.
  Fixture f(TopologyConfig{.num_nodes = 4, .nic_gbps = 100.0});
  f.net.start_flow(0, 1, 50.0 * kGbps, [](SimTime) {});
  const FlowId b = f.net.start_flow(0, 2, 50.0 * kGbps, [](SimTime) {});
  const FlowId c = f.net.start_flow(3, 2, 50.0 * kGbps, [](SimTime) {});
  EXPECT_NEAR(f.net.flow_rate(b), 50.0 * kGbps, 1.0);
  EXPECT_NEAR(f.net.flow_rate(c), 50.0 * kGbps, 1.0);
  f.sim.run();
}

TEST(FlowNetwork, BottleneckedFlowFreesCapacity) {
  // A slow pair cap on one flow lets a competing flow use the remainder —
  // the essence of max-min (not proportional) fairness.
  Fixture f(TopologyConfig{.num_nodes = 3, .nic_gbps = 100.0});
  f.topo.set_pair_cap(0, 1, 20.0);
  const FlowId slow = f.net.start_flow(0, 1, 1e9, [](SimTime) {});
  const FlowId fast = f.net.start_flow(0, 2, 1e9, [](SimTime) {});
  EXPECT_NEAR(f.net.flow_rate(slow), 20.0 * kGbps, 1.0);
  EXPECT_NEAR(f.net.flow_rate(fast), 80.0 * kGbps, 1.0);
  f.net.abort_flow(slow);
  f.net.abort_flow(fast);
  f.sim.run();
}

TEST(FlowNetwork, AbortStopsCallback) {
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  bool fired = false;
  const FlowId id =
      f.net.start_flow(0, 1, 1e12, [&](SimTime) { fired = true; });
  f.sim.after(0.001, [&] { f.net.abort_flow(id); });
  f.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(f.net.active_flows(), 0u);
}

TEST(FlowNetwork, BytesCompletedAccumulates) {
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  f.net.start_flow(0, 1, 1000.0, [](SimTime) {});
  f.net.start_flow(0, 1, 500.0, [](SimTime) {});
  f.sim.run();
  EXPECT_NEAR(f.net.bytes_completed(), 1500.0, 1e-6);
}

TEST(FlowNetwork, ZeroByteFlowCompletes) {
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  bool fired = false;
  f.net.start_flow(0, 1, 0.0, [&](SimTime) { fired = true; });
  f.sim.run();
  EXPECT_TRUE(fired);
}

TEST(FlowNetwork, ManySimultaneousCompletions) {
  // 8 identical flows from distinct sources to distinct sinks finish at
  // the same instant; all callbacks must fire.
  Fixture f(TopologyConfig{.num_nodes = 16, .nic_gbps = 100.0});
  int fired = 0;
  for (std::uint32_t i = 0; i < 8; ++i)
    f.net.start_flow(i, 8 + i, 1e9, [&](SimTime) { ++fired; });
  f.sim.run();
  EXPECT_EQ(fired, 8);
}

}  // namespace
}  // namespace rdmc::sim
