// Property-based validation of the max-min fair allocator: for randomized
// flow sets over randomized topologies, the computed rates must satisfy
// the defining conditions of the (unique) max-min fair allocation:
//   (feasibility)  no resource is over its capacity;
//   (bottleneck)   every flow crosses at least one saturated resource on
//                  which its rate is maximal among the resource's flows.
// These two conditions characterise max-min fairness exactly, so passing
// them across the sweep proves the lazy-heap water filling correct.
#include <gtest/gtest.h>

#include <map>

#include "sim/flow_network.hpp"
#include "util/random.hpp"

namespace rdmc::sim {
namespace {

struct FlowSpec {
  NodeId src, dst;
  double rate = 0.0;
};

struct Scenario {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t flows;
  bool racks;
  bool pair_caps;
};

class MaxMinProperty : public ::testing::TestWithParam<Scenario> {};

TEST_P(MaxMinProperty, AllocationIsMaxMinFair) {
  const Scenario sc = GetParam();
  util::Rng rng(sc.seed);

  TopologyConfig cfg;
  cfg.num_nodes = sc.nodes;
  cfg.nic_gbps = 100.0;
  if (sc.racks) {
    cfg.nodes_per_rack = std::max<std::size_t>(2, sc.nodes / 3);
    cfg.rack_uplink_gbps = 120.0;
  }
  Simulator sim;
  Topology topo(cfg);
  FlowNetwork net(sim, topo);

  // Random distinct-endpoint flows (duplicates of (src,dst) allowed: two
  // QPs between one pair).
  std::vector<FlowSpec> specs;
  std::vector<FlowId> ids;
  for (std::size_t i = 0; i < sc.flows; ++i) {
    NodeId src = static_cast<NodeId>(rng.uniform(0, sc.nodes - 1));
    NodeId dst = static_cast<NodeId>(rng.uniform(0, sc.nodes - 1));
    if (src == dst) dst = (dst + 1) % sc.nodes;
    specs.push_back({src, dst});
    ids.push_back(net.start_flow(src, dst, 1e15, [](SimTime) {}));
  }
  if (sc.pair_caps) {
    // Cap a few random pairs used by flows.
    for (std::size_t i = 0; i < specs.size(); i += 3) {
      topo.set_pair_cap(specs[i].src, specs[i].dst,
                        5.0 + 40.0 * rng.uniform01());
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i)
    specs[i].rate = net.flow_rate(ids[i]);

  // Rebuild the resource usage table independently of the allocator.
  struct Usage {
    double cap = 0.0;
    double used = 0.0;
    std::vector<std::size_t> flows;
  };
  std::map<std::string, Usage> usage;
  auto touch = [&](const std::string& key, double cap, std::size_t flow) {
    auto& u = usage[key];
    u.cap = cap;
    u.used += specs[flow].rate;
    u.flows.push_back(flow);
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& f = specs[i];
    touch("tx" + std::to_string(f.src), topo.node_tx_Bps(f.src), i);
    touch("rx" + std::to_string(f.dst), topo.node_rx_Bps(f.dst), i);
    if (topo.num_racks() > 1 && !topo.same_rack(f.src, f.dst)) {
      touch("up" + std::to_string(topo.rack_of(f.src)),
            topo.rack_uplink_Bps(), i);
      touch("down" + std::to_string(topo.rack_of(f.dst)),
            topo.rack_uplink_Bps(), i);
    }
    if (auto cap = topo.pair_cap_Bps(f.src, f.dst)) {
      touch("pair" + std::to_string(f.src) + "_" + std::to_string(f.dst),
            *cap, i);
    }
  }

  const double tol = 1e-4 * topo.nic_Bps();
  // Feasibility.
  for (const auto& [key, u] : usage)
    EXPECT_LE(u.used, u.cap + tol) << "resource " << key << " overloaded";
  // Positivity.
  for (const auto& f : specs) EXPECT_GT(f.rate, 0.0);
  // Bottleneck condition.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    bool has_bottleneck = false;
    for (const auto& [key, u] : usage) {
      if (std::find(u.flows.begin(), u.flows.end(), i) == u.flows.end())
        continue;
      if (u.used < u.cap - tol) continue;  // not saturated
      double max_rate = 0.0;
      for (std::size_t j : u.flows)
        max_rate = std::max(max_rate, specs[j].rate);
      if (specs[i].rate >= max_rate - tol) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck)
        << "flow " << i << " (" << specs[i].src << "->" << specs[i].dst
        << ", rate " << specs[i].rate << ") has no bottleneck";
  }

  for (FlowId id : ids) net.abort_flow(id);
  sim.run();
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  std::uint64_t seed = 1000;
  for (std::size_t nodes : {3, 6, 12, 24}) {
    for (std::size_t flows : {2, 7, 20, 60}) {
      for (bool racks : {false, true}) {
        for (bool caps : {false, true}) {
          out.push_back({seed++, nodes, flows, racks, caps});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaxMinProperty, ::testing::ValuesIn(scenarios()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      const Scenario& s = info.param;
      return "n" + std::to_string(s.nodes) + "_f" +
             std::to_string(s.flows) + (s.racks ? "_racks" : "_flat") +
             (s.pair_caps ? "_caps" : "_nocaps");
    });

}  // namespace
}  // namespace rdmc::sim
