// The experiment harness itself (SimCluster, run_multicast,
// run_concurrent): every bench stands on these, so their contracts get
// their own coverage.
#include <gtest/gtest.h>

#include "harness/sim_harness.hpp"

namespace rdmc::harness {
namespace {

TEST(Harness, RunOneReportsMakespan) {
  SimCluster cluster(sim::fractus_profile(4));
  GroupOptions options;
  cluster.create_group(1, {0, 1, 2, 3}, options);
  const double t = cluster.run_one(1, 16ull << 20);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);
  // Delivery records exist for every receiver, none for the 4th member
  // beyond its own send bookkeeping.
  const auto& rec = cluster.record(1);
  for (std::size_t m = 1; m < 4; ++m)
    EXPECT_EQ(rec.delivery_times[m].size(), 1u);
}

TEST(Harness, SequentialMessagesAccumulateRecords) {
  SimCluster cluster(sim::fractus_profile(4));
  cluster.create_group(1, {0, 1, 2, 3}, GroupOptions{});
  cluster.run_one(1, 1 << 20);
  cluster.run_one(1, 2 << 20);
  const auto& rec = cluster.record(1);
  for (std::size_t m = 1; m < 4; ++m) {
    ASSERT_EQ(rec.delivery_times[m].size(), 2u);
    EXPECT_LT(rec.delivery_times[m][0], rec.delivery_times[m][1]);
  }
}

TEST(Harness, MulticastResultFieldsConsistent) {
  MulticastConfig cfg;
  cfg.profile = sim::fractus_profile(8);
  cfg.group_size = 8;
  cfg.message_bytes = 32ull << 20;
  cfg.messages = 2;
  const auto r = run_multicast(cfg);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_NEAR(r.latency_seconds, r.total_seconds / 2, 1e-12);
  EXPECT_NEAR(r.bandwidth_gbps,
              2.0 * 32.0 * (1 << 20) * 8 / r.total_seconds / 1e9, 1e-6);
  EXPECT_GE(r.skew_seconds, 0.0);
  EXPECT_GE(r.root_cpu_fraction, 0.0);
  EXPECT_LE(r.root_cpu_fraction, 1.0);
}

TEST(Harness, MembersOverrideChoosesRoot) {
  // An explicit member list re-roots the group: the front member is the
  // sender regardless of node id, and every other listed node delivers.
  MulticastConfig cfg;
  cfg.profile = sim::fractus_profile(8);
  cfg.group_size = 4;
  cfg.members = std::vector<NodeId>{5, 2, 7, 0};
  cfg.message_bytes = 4ull << 20;
  const auto r = run_multicast(cfg);
  EXPECT_GT(r.bandwidth_gbps, 1.0);
  EXPECT_GE(r.skew_seconds, 0.0);
}

TEST(Harness, ConcurrentAggregatesAllGroups) {
  ConcurrentConfig cfg;
  cfg.profile = sim::fractus_profile(8);
  cfg.group_size = 4;
  cfg.senders = 4;
  cfg.message_bytes = 4ull << 20;
  cfg.messages = 2;
  const auto r = run_concurrent(cfg);
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_NEAR(r.aggregate_gbps,
              4.0 * 2.0 * 4.0 * (1 << 20) * 8 / r.makespan_seconds / 1e9,
              1e-6);
}

TEST(Harness, HybridConfigRuns) {
  MulticastConfig cfg;
  cfg.profile = sim::apt_profile(32);
  cfg.group_size = 32;
  cfg.message_bytes = 4ull << 20;
  std::vector<std::uint32_t> racks(32);
  for (std::size_t i = 0; i < 32; ++i)
    racks[i] = static_cast<std::uint32_t>(i / 16);
  cfg.hybrid_racks = racks;
  const auto r = run_multicast(cfg);
  EXPECT_GT(r.bandwidth_gbps, 1.0);
}

}  // namespace
}  // namespace rdmc::harness
