// Property-based validation of the hierarchical (rack-island) max-min
// solver against the flat exact solver and the full-recompute oracle.
//
// The hierarchical path decomposes an oversubscribed-TOR component into
// per-rack islands coupled through the uplink fair shares and iterates the
// coupling to a fixed point. Its contract is *exactness*: on every
// component it accepts, the rates must match the flat bottleneck
// elimination to fixed-point tolerance, and the per-resource saturation
// marks must be canonical (usage-derived) so the incremental reallocation
// machinery can't tell the two solvers apart. This test drives randomized
// churn (flow starts and aborts) over racked topologies with varying
// oversubscription and fan-out, keeping two FlowNetworks in lockstep — one
// hierarchical, one flat — and checks
//   (equivalence)   every live flow's rate matches between the two to 1e-9;
//   (oracle)        both networks match a from-scratch water filling;
//   (engagement)    the hierarchical solver actually ran (hier_fills > 0),
//                   so the equivalence isn't vacuous.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/flow_network.hpp"
#include "util/random.hpp"

namespace rdmc::sim {
namespace {

struct Scenario {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t nodes_per_rack;
  double oversubscription;
  std::size_t flows;        // live target during churn
  std::size_t churn_steps;  // start/abort operations after warm-up
};

class HierFillProperty : public ::testing::TestWithParam<Scenario> {};

TEST_P(HierFillProperty, MatchesFlatExactUnderChurn) {
  const Scenario sc = GetParam();
  util::Rng rng(sc.seed);

  TopologyConfig cfg;
  cfg.num_nodes = sc.nodes;
  cfg.nic_gbps = 56.0;
  cfg.nodes_per_rack = sc.nodes_per_rack;
  cfg.rack_uplink_gbps = cfg.nic_gbps *
                         static_cast<double>(sc.nodes_per_rack) /
                         sc.oversubscription;

  Simulator sim_h, sim_f;
  Topology topo_h(cfg), topo_f(cfg);
  FlowNetwork net_h(sim_h, topo_h);
  FlowNetwork net_f(sim_f, topo_f);
  // Engage the island solver on the small components this test can afford;
  // the flat network is the reference.
  net_h.set_hier_min_flows(8);
  net_f.set_hierarchical(false);

  struct Live {
    FlowId h, f;
  };
  std::vector<Live> live;

  const auto start_one = [&] {
    // Bias toward cross-rack flows — same-rack-only components never
    // couple through an uplink and fall to the flat path anyway.
    NodeId src = static_cast<NodeId>(rng.uniform(0, sc.nodes - 1));
    NodeId dst = static_cast<NodeId>(rng.uniform(0, sc.nodes - 1));
    if (src == dst) dst = (dst + 1) % sc.nodes;
    if (topo_h.same_rack(src, dst) && rng.uniform01() < 0.75)
      dst = static_cast<NodeId>((dst + sc.nodes_per_rack) % sc.nodes);
    if (src == dst) dst = (dst + 1) % sc.nodes;
    const FlowId h = net_h.start_flow(src, dst, 1e15, [](SimTime) {});
    const FlowId f = net_f.start_flow(src, dst, 1e15, [](SimTime) {});
    live.push_back({h, f});
  };
  const auto abort_one = [&] {
    const std::size_t i = rng.uniform(0, live.size() - 1);
    net_h.abort_flow(live[i].h);
    net_f.abort_flow(live[i].f);
    live[i] = live.back();
    live.pop_back();
  };
  const auto check = [&] {
    for (const Live& fl : live) {
      const double a = net_h.flow_rate(fl.h);
      const double b = net_f.flow_rate(fl.f);
      EXPECT_GT(a, 0.0);
      EXPECT_LE(std::abs(a - b), 1e-9 * std::max(1.0, std::abs(b)))
          << "hier rate " << a << " != flat rate " << b;
    }
    EXPECT_TRUE(net_h.rates_match_full_recompute(1e-9));
    EXPECT_TRUE(net_f.rates_match_full_recompute(1e-9));
  };

  for (std::size_t i = 0; i < sc.flows; ++i) start_one();
  check();
  for (std::size_t step = 0; step < sc.churn_steps; ++step) {
    // Drift around the target population so components keep reshaping.
    const bool grow =
        live.size() < 2 || (live.size() < 2 * sc.flows && rng.uniform01() < 0.5);
    if (grow)
      start_one();
    else
      abort_one();
    check();
  }

  EXPECT_GT(net_h.counters().hier_fills, 0u)
      << "hierarchical solver never engaged: the equivalence is vacuous";
  EXPECT_EQ(net_f.counters().hier_fills, 0u);

  for (const Live& fl : live) {
    net_h.abort_flow(fl.h);
    net_f.abort_flow(fl.f);
  }
  sim_h.run();
  sim_f.run();
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  std::uint64_t seed = 7000;
  for (const double over : {2.0, 3.5, 7.0}) {
    out.push_back({seed++, 32, 8, over, 90, 40});
    out.push_back({seed++, 48, 16, over, 120, 30});
  }
  // Degenerate fan-outs: a two-node rack and a rack holding half the
  // cluster; both still decompose as long as flows cross racks.
  out.push_back({seed++, 24, 2, 4.0, 80, 30});
  out.push_back({seed++, 24, 12, 1.5, 80, 30});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierFillProperty, ::testing::ValuesIn(scenarios()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      const Scenario& s = info.param;
      return "n" + std::to_string(s.nodes) + "_rack" +
             std::to_string(s.nodes_per_rack) + "_over" +
             std::to_string(static_cast<int>(s.oversubscription * 10));
    });

}  // namespace
}  // namespace rdmc::sim
