// MemFabric semantics: FIFO per QP, send/recv matching, immediates,
// write-with-immediate, break flushing — the RC-verbs slice RDMC needs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "fabric/mem_fabric.hpp"

namespace rdmc::fabric {
namespace {

using namespace std::chrono_literals;

/// Collects completions for one endpoint with waiting helpers.
class Collector {
 public:
  explicit Collector(Endpoint& ep) : ep_(ep) {
    ep.set_completion_handler([this](const Completion& c) {
      std::lock_guard lock(mutex_);
      completions_.push_back(c);
      cv_.notify_all();
    });
  }

  /// Detach before members die; the setter synchronises with in-flight
  /// dispatch (the fabric's documented guarantee).
  ~Collector() { ep_.set_completion_handler(nullptr); }

  /// Wait until at least n completions arrived (5 s timeout).
  bool wait_for(std::size_t n) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, 5s,
                        [&] { return completions_.size() >= n; });
  }

  std::vector<Completion> snapshot() {
    std::lock_guard lock(mutex_);
    return completions_;
  }

 private:
  Endpoint& ep_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Completion> completions_;
};

TEST(MemFabric, BasicSendRecv) {
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  QueuePair* qp1 = fabric.connect(1, 0, 0);
  ASSERT_NE(qp0, nullptr);
  ASSERT_NE(qp1, nullptr);
  EXPECT_EQ(qp0->peer(), 1u);
  EXPECT_EQ(qp1->peer(), 0u);

  std::vector<std::byte> src(1024), dst(1024);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i * 7);

  ASSERT_TRUE(ok(qp1->post_recv(MemoryView{dst.data(), dst.size()}, 11)));
  ASSERT_TRUE(ok(qp0->post_send(MemoryView{src.data(), src.size()}, 22, 999)));

  ASSERT_TRUE(c0.wait_for(1));
  ASSERT_TRUE(c1.wait_for(1));
  const auto s = c0.snapshot();
  const auto r = c1.snapshot();
  EXPECT_EQ(s[0].opcode, WcOpcode::kSend);
  EXPECT_EQ(s[0].wr_id, 22u);
  EXPECT_EQ(r[0].opcode, WcOpcode::kRecv);
  EXPECT_EQ(r[0].wr_id, 11u);
  EXPECT_EQ(r[0].immediate, 999u);
  EXPECT_EQ(r[0].byte_len, 1024u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(MemFabric, SendWaitsForRecv) {
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  QueuePair* qp1 = fabric.connect(1, 0, 0);

  std::vector<std::byte> src(64, std::byte{5}), dst(64);
  ASSERT_TRUE(ok(qp0->post_send(MemoryView{src.data(), src.size()}, 1, 0)));
  std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(c1.snapshot().empty());  // nothing until a recv is posted
  ASSERT_TRUE(ok(qp1->post_recv(MemoryView{dst.data(), dst.size()}, 2)));
  ASSERT_TRUE(c1.wait_for(1));
  EXPECT_EQ(dst[0], std::byte{5});
}

TEST(MemFabric, FifoOrderPerQp) {
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  QueuePair* qp1 = fabric.connect(1, 0, 0);

  constexpr int kCount = 64;
  std::vector<std::vector<std::byte>> src(kCount), dst(kCount);
  for (int i = 0; i < kCount; ++i) {
    src[i].assign(16, static_cast<std::byte>(i));
    dst[i].assign(16, std::byte{0xFF});
    ASSERT_TRUE(ok(qp1->post_recv(MemoryView{dst[i].data(), dst[i].size()}, i)));
  }
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(ok(qp0->post_send(MemoryView{src[i].data(), src[i].size()},
                               1000 + i, i)));
  }
  ASSERT_TRUE(c1.wait_for(kCount));
  const auto r = c1.snapshot();
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(r[i].wr_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(r[i].immediate, static_cast<std::uint32_t>(i));
    EXPECT_EQ(dst[i][0], static_cast<std::byte>(i));  // i-th recv got i-th send
  }
}

TEST(MemFabric, ChannelsAreIndependent) {
  MemFabric fabric(2);
  Collector c1(fabric.endpoint(1));
  QueuePair* a0 = fabric.connect(0, 1, 0);
  QueuePair* b0 = fabric.connect(0, 1, 7);
  QueuePair* a1 = fabric.connect(1, 0, 0);
  QueuePair* b1 = fabric.connect(1, 0, 7);
  EXPECT_NE(a0, b0);
  EXPECT_NE(a0->id(), b0->id());

  std::vector<std::byte> x(8, std::byte{1}), y(8, std::byte{2});
  std::vector<std::byte> dx(8), dy(8);
  // Post the recv only on channel 7; channel 0's send must not consume it.
  ASSERT_TRUE(ok(b1->post_recv(MemoryView{dy.data(), dy.size()}, 1)));
  ASSERT_TRUE(ok(a0->post_send(MemoryView{x.data(), x.size()}, 2, 0)));
  ASSERT_TRUE(ok(b0->post_send(MemoryView{y.data(), y.size()}, 3, 0)));
  ASSERT_TRUE(c1.wait_for(1));
  EXPECT_EQ(dy[0], std::byte{2});
  ASSERT_TRUE(ok(a1->post_recv(MemoryView{dx.data(), dx.size()}, 4)));
  ASSERT_TRUE(c1.wait_for(2));
  EXPECT_EQ(dx[0], std::byte{1});
}

TEST(MemFabric, WriteImmBypassesRecvQueue) {
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  ASSERT_TRUE(ok(qp0->post_write_imm(4242, 77)));
  ASSERT_TRUE(c1.wait_for(1));
  const auto r = c1.snapshot();
  EXPECT_EQ(r[0].opcode, WcOpcode::kRecvWriteImm);
  EXPECT_EQ(r[0].immediate, 4242u);
  ASSERT_TRUE(c0.wait_for(1));
  EXPECT_EQ(c0.snapshot()[0].opcode, WcOpcode::kWriteImm);
  EXPECT_EQ(c0.snapshot()[0].wr_id, 77u);
}

TEST(MemFabric, PhantomBuffersMoveNoBytes) {
  MemFabric fabric(2);
  Collector c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  QueuePair* qp1 = fabric.connect(1, 0, 0);
  ASSERT_TRUE(ok(qp1->post_recv(MemoryView{nullptr, 4096}, 1)));
  ASSERT_TRUE(ok(qp0->post_send(MemoryView{nullptr, 4096}, 2, 5)));
  ASSERT_TRUE(c1.wait_for(1));
  EXPECT_EQ(c1.snapshot()[0].byte_len, 4096u);
  EXPECT_EQ(c1.snapshot()[0].immediate, 5u);
}

TEST(MemFabric, BreakFlushesAndNotifies) {
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  QueuePair* qp1 = fabric.connect(1, 0, 0);

  std::vector<std::byte> src(64), dst(64);
  // A send with no matching recv sits pending, then the link breaks.
  ASSERT_TRUE(ok(qp0->post_send(MemoryView{src.data(), src.size()}, 1, 0)));
  ASSERT_TRUE(ok(qp1->post_recv(MemoryView{dst.data(), dst.size()}, 2)));
  ASSERT_TRUE(c1.wait_for(1));
  ASSERT_TRUE(ok(qp0->post_send(MemoryView{src.data(), src.size()}, 3, 0)));
  fabric.break_link(0, 1);

  // Sender: completion for send 1, flush for send 3, disconnect.
  ASSERT_TRUE(c0.wait_for(3));
  bool saw_flush = false, saw_disconnect = false;
  for (const auto& c : c0.snapshot()) {
    saw_flush |= (c.status == WcStatus::kFlushed && c.wr_id == 3);
    saw_disconnect |= (c.opcode == WcOpcode::kDisconnect);
  }
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_disconnect);

  ASSERT_TRUE(c1.wait_for(2));
  bool recv_disc = false;
  for (const auto& c : c1.snapshot())
    recv_disc |= (c.opcode == WcOpcode::kDisconnect);
  EXPECT_TRUE(recv_disc);

  // Posts after a break fail fast.
  EXPECT_EQ(qp0->post_send(MemoryView{src.data(), src.size()}, 9, 0), PostResult::kQpBroken);
  EXPECT_EQ(qp1->post_recv(MemoryView{dst.data(), dst.size()}, 9), PostResult::kQpBroken);
  EXPECT_TRUE(qp0->broken());
}

TEST(MemFabric, CrashNodeBreaksAllLinks) {
  MemFabric fabric(4);
  Collector c1(fabric.endpoint(1)), c2(fabric.endpoint(2)),
      c3(fabric.endpoint(3));
  fabric.connect(1, 0, 0);
  fabric.connect(2, 0, 0);
  fabric.connect(3, 2, 0);
  fabric.crash_node(0);
  ASSERT_TRUE(c1.wait_for(1));
  ASSERT_TRUE(c2.wait_for(1));
  EXPECT_EQ(c1.snapshot()[0].opcode, WcOpcode::kDisconnect);
  EXPECT_EQ(c2.snapshot()[0].opcode, WcOpcode::kDisconnect);
  // Link 3<->2 survives.
  std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(c3.snapshot().empty());
}

TEST(MemFabric, CloseRevokesPostedReceives) {
  // QueuePair::close() fences posted receives: after it returns, traffic
  // arriving for the QP is discarded, never written into the old buffers.
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  QueuePair* qp1 = fabric.connect(1, 0, 0);
  std::vector<std::byte> dst(64, std::byte{0});
  ASSERT_TRUE(ok(qp1->post_recv(MemoryView{dst.data(), dst.size()}, 1)));
  qp1->close();
  std::vector<std::byte> src(64, std::byte{9});
  // The peer's send "succeeds" (bytes discarded), our buffer is untouched,
  // and no receive completion fires.
  ASSERT_TRUE(ok(qp0->post_send(MemoryView{src.data(), src.size()}, 2, 0)));
  ASSERT_TRUE(c0.wait_for(1));
  EXPECT_EQ(c0.snapshot()[0].opcode, WcOpcode::kSend);
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(c1.snapshot().empty());
  EXPECT_EQ(dst[0], std::byte{0});
  // Posting on a closed QP fails.
  EXPECT_EQ(qp1->post_recv(MemoryView{dst.data(), dst.size()}, 3), PostResult::kQpBroken);
  EXPECT_TRUE(qp1->broken());
}

TEST(MemFabric, UnregisterWindowFences) {
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  std::vector<std::byte> window(64, std::byte{0});
  fabric.endpoint(1).register_window(
      5, MemoryView{window.data(), window.size()});
  QueuePair* qp0 = fabric.connect(0, 1, 5);
  fabric.endpoint(1).unregister_window(5);
  std::vector<std::byte> src(16, std::byte{7});
  // Writes to a deregistered window are dropped, not faults.
  ASSERT_TRUE(ok(qp0->post_window_write(
      5, 0, MemoryView{src.data(), src.size()}, 0, 1, true)));
  ASSERT_TRUE(c0.wait_for(1));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(window[0], std::byte{0});
  EXPECT_FALSE(qp0->broken());
}

TEST(MemFabric, OobMesh) {
  MemFabric fabric(3);
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::pair<NodeId, std::string>> got;
  fabric.endpoint(2).set_oob_handler(
      [&](NodeId from, std::span<const std::byte> payload) {
        std::lock_guard lock(m);
        got.emplace_back(from,
                         std::string(reinterpret_cast<const char*>(
                                         payload.data()),
                                     payload.size()));
        cv.notify_all();
      });
  const char* msg = "failure:group7";
  std::vector<std::byte> payload(
      reinterpret_cast<const std::byte*>(msg),
      reinterpret_cast<const std::byte*>(msg) + std::strlen(msg));
  fabric.endpoint(0).send_oob(2, payload);
  fabric.endpoint(1).send_oob(2, payload);
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return got.size() == 2; }));
  EXPECT_EQ(got[0].second, "failure:group7");
}

TEST(MemFabric, RecvTooSmallBreaksQp) {
  MemFabric fabric(2);
  Collector c0(fabric.endpoint(0)), c1(fabric.endpoint(1));
  QueuePair* qp0 = fabric.connect(0, 1, 0);
  QueuePair* qp1 = fabric.connect(1, 0, 0);
  std::vector<std::byte> big(128), small(32);
  ASSERT_TRUE(ok(qp1->post_recv(MemoryView{small.data(), small.size()}, 1)));
  ASSERT_TRUE(ok(qp0->post_send(MemoryView{big.data(), big.size()}, 2, 0)));
  ASSERT_TRUE(c0.wait_for(2));  // error completion + disconnect
  bool saw_error = false;
  for (const auto& c : c0.snapshot())
    saw_error |= (c.status == WcStatus::kError);
  EXPECT_TRUE(saw_error);
}

}  // namespace
}  // namespace rdmc::fabric
