// Unified observability layer: trace recorder + Chrome JSON export,
// metrics registry, critical-path stall analyzer, pluggable log sink.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "harness/sim_harness.hpp"
#include "json_scanner.hpp"
#include "obs/metrics.hpp"
#include "obs/stall.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/logging.hpp"

using namespace rdmc;

namespace {

using rdmc::tests::JsonScanner;

// Run one traced pipeline multicast on SimFabric; returns the snapshot.
std::vector<obs::TraceEvent> traced_multicast(std::size_t nodes,
                                              std::uint64_t bytes) {
  obs::TraceRecorder::instance().enable();
  harness::MulticastConfig cfg;
  cfg.profile = sim::fractus_profile(nodes);
  cfg.group_size = nodes;
  cfg.message_bytes = bytes;
  cfg.block_size = 64 << 10;
  harness::run_multicast(cfg);
  auto events = obs::TraceRecorder::instance().snapshot();
  obs::TraceRecorder::instance().disable();
  return events;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

TEST(TraceExport, JsonWellFormedAndSchemaStable) {
  const auto events = traced_multicast(4, 1u << 20);
  ASSERT_FALSE(events.empty());
  const std::string json = obs::to_chrome_json(events);

  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.whole_document()) << "export is not valid JSON";

  // Chrome trace_event required keys.
  EXPECT_TRUE(contains(json, "\"traceEvents\""));
  EXPECT_TRUE(contains(json, "\"ph\""));
  EXPECT_TRUE(contains(json, "\"ts\""));
  EXPECT_TRUE(contains(json, "\"pid\""));
  EXPECT_TRUE(contains(json, "\"tid\""));
  // Process rows exist for the layers that emitted.
  EXPECT_TRUE(contains(json, "process_name"));
  EXPECT_TRUE(contains(json, "thread_name"));

  // Spans from all three layers: core engine, fabric, simulator.
  EXPECT_TRUE(contains(json, "\"name\":\"msg\""));
  EXPECT_TRUE(contains(json, "\"name\":\"block\""));
  EXPECT_TRUE(contains(json, "\"name\":\"xfer\""));
  EXPECT_TRUE(contains(json, "\"name\":\"flow\""));
}

TEST(TraceExport, DeterministicAcrossSameSeedRuns) {
  const auto a = traced_multicast(4, 1u << 20);
  const auto b = traced_multicast(4, 1u << 20);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(obs::to_chrome_json(a), obs::to_chrome_json(b));
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  auto& rec = obs::TraceRecorder::instance();
  rec.enable(obs::TraceRecorder::Options{8});
  for (std::uint64_t i = 0; i < 20; ++i)
    rec.instant(obs::Cat::kApp, "tick", 0, static_cast<double>(i));
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest surviving first.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_DOUBLE_EQ(events[i].ts, static_cast<double>(12 + i));
  rec.disable();
}

TEST(Metrics, Log2HistogramBucketBoundaries) {
  obs::Log2Histogram h(-4, 3);  // buckets cover [2^-4, 2^4)
  EXPECT_EQ(h.bucket_count(), 8u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0625);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 0.125);
  EXPECT_DOUBLE_EQ(h.bucket_lo(7), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(7), 16.0);

  // An exact power of two is the *inclusive* lower bound of its bucket.
  h.add(1.0);                       // bucket of [1, 2) -> index 4
  h.add(std::nextafter(2.0, 0.0));  // still [1, 2)
  h.add(2.0);                       // [2, 4) -> index 5
  EXPECT_EQ(h.count_at(4), 2u);
  EXPECT_EQ(h.count_at(5), 1u);

  // Range edges.
  h.add(0.0625);  // == 2^min_exp -> first bucket, not underflow
  EXPECT_EQ(h.count_at(0), 1u);
  h.add(0.03);  // < 2^min_exp
  h.add(0.0);
  h.add(-1.0);
  EXPECT_EQ(h.underflow(), 3u);
  h.add(16.0);  // == 2^(max_exp+1) -> overflow
  h.add(1e9);
  EXPECT_EQ(h.overflow(), 2u);

  EXPECT_EQ(h.total(), 9u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Metrics, RegistryRoundTripAndPerfStatsView) {
  obs::MetricsRegistry registry;
  registry.counter("sim.events").set(42);
  registry.counter("harness.wall_ns").set(1500000000);
  registry.histogram("lat").add(0.5);

  const harness::PerfStats stats = harness::PerfStats::from(registry);
  EXPECT_EQ(stats.events_processed, 42u);
  EXPECT_DOUBLE_EQ(stats.wall_seconds, 1.5);
  EXPECT_EQ(stats.flow_starts, 0u);  // absent names read as zero

  const std::string json = registry.to_json();
  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.whole_document());
  EXPECT_TRUE(contains(json, "\"sim.events\":42"));
}

TEST(Stall, ChainAttributionWithInjectedDegrade) {
  obs::TraceRecorder::instance().enable();

  auto profile = sim::fractus_profile(3);
  harness::SimCluster cluster(profile);
  GroupOptions options;
  options.block_size = 64 << 10;
  options.algorithm = sched::Algorithm::kChain;
  cluster.create_group(1, {0, 1, 2}, options);

  const std::uint64_t bytes = 4u << 20;
  // Calibrate an undisturbed run first so the fault lands mid-transfer.
  ASSERT_TRUE(cluster.node(0).send(1, nullptr, bytes));
  cluster.run_to_quiescence();
  const double clean = cluster.sim().now();
  ASSERT_GT(clean, 0.0);

  obs::TraceRecorder::instance().enable();  // clear, trace the faulty run
  harness::SimCluster faulty(profile);
  faulty.create_group(1, {0, 1, 2}, options);
  // Degrade the chain's 1 -> 2 hop to 25% bandwidth from 30% of the clean
  // runtime until past the (now much later) end, so the tail receiver's
  // final wire transfer provably overlaps the fault window.
  faulty.sim().at(clean * 0.3, [&] {
    ASSERT_TRUE(faulty.fabric().degrade_link(1, 2, 0.25, clean * 10.0));
  });
  ASSERT_TRUE(faulty.node(0).send(1, nullptr, bytes));
  faulty.run_to_quiescence();
  const auto events = obs::TraceRecorder::instance().snapshot();
  obs::TraceRecorder::instance().disable();

  const auto analysis = obs::analyze_multicast(events, 1, {0, 1, 2});
  for (const auto& w : analysis.warnings) ADD_FAILURE() << w;
  ASSERT_EQ(analysis.receivers.size(), 2u);

  for (const auto& r : analysis.receivers) {
    EXPECT_GT(r.latency_s, 0.0);
    EXPECT_GT(r.hops, 0u);
    // The per-class segments tile [msg start, delivery]: sums are exact.
    EXPECT_NEAR(r.sum(), r.latency_s, 1e-12 + r.latency_s * 1e-9);
    EXPECT_GE(r.transfer_s, 0.0);
    EXPECT_GE(r.wait_s, 0.0);
    EXPECT_GE(r.software_s, 0.0);
    EXPECT_GE(r.injected_s, 0.0);
    EXPECT_DOUBLE_EQ(r.recovery_s, 0.0);
  }

  // Node 2 sits behind the degraded hop: it must see injected stall time,
  // and the degrade must have actually slowed the run.
  const auto& tail = analysis.receivers.back();
  EXPECT_EQ(tail.node, 2u);
  EXPECT_GT(tail.injected_s, 0.0);
  EXPECT_GT(tail.latency_s, clean);
}

TEST(Stall, DecompositionClosesWithinOnePercent) {
  const auto events = traced_multicast(8, 2u << 20);
  std::vector<std::uint32_t> members(8);
  for (std::uint32_t i = 0; i < 8; ++i) members[i] = i;
  const auto analysis = obs::analyze_multicast(events, 1, members);
  for (const auto& w : analysis.warnings) ADD_FAILURE() << w;
  ASSERT_EQ(analysis.receivers.size(), 7u);
  for (const auto& r : analysis.receivers) {
    ASSERT_GT(r.latency_s, 0.0);
    EXPECT_LE(std::abs(r.sum() / r.latency_s - 1.0), 0.01);
  }
}

TEST(Stall, StepProfileTransfersBoundedByGaps) {
  const auto events = traced_multicast(4, 1u << 20);
  const auto sender = obs::step_profile(events, 1, 0, /*sender_side=*/true);
  const auto relay = obs::step_profile(events, 1, 1, /*sender_side=*/false);
  EXPECT_GT(sender.size(), 4u);
  EXPECT_GT(relay.size(), 4u);
  for (const auto& row : sender) {
    EXPECT_GE(row.transfer_us, 0.0);
    EXPECT_GE(row.wait_us, 0.0);
  }
}

TEST(Logging, PluggableSinkCapturesWarnings) {
  std::vector<std::string> lines;
  auto previous = util::set_log_sink(
      [&lines](util::LogLevel level, const char* tag, const char* body) {
        lines.push_back(std::string(util::level_name(level)) + "/" + tag +
                        ": " + body);
      });
  RDMC_LOG_WARN("test", "disk %d%% full", 93);
  RDMC_LOG_ERROR("core", "oops");
  RDMC_LOG_DEBUG("test", "invisible at default level");
  util::set_log_sink(std::move(previous));
  RDMC_LOG_WARN("test", "back on stderr, not captured");

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "WARN/test: disk 93% full");
  EXPECT_EQ(lines[1], "ERROR/core: oops");
}

// The bounded-memory guarantee the retired per-group trace vector provided
// now lives in the recorder ring: a traced multicast that outgrows the ring
// keeps only the newest `capacity` events and reports the overwrites.
TEST(GroupTrace, RecorderRingBoundsTracedMulticast) {
  auto& rec = obs::TraceRecorder::instance();
  obs::TraceRecorder::Options ring;
  ring.capacity = 16;
  rec.enable(ring);
  auto profile = sim::fractus_profile(4);
  harness::SimCluster cluster(profile);
  GroupOptions options;
  options.block_size = 64 << 10;
  cluster.create_group(1, {0, 1, 2, 3}, options);
  ASSERT_TRUE(cluster.node(0).send(1, nullptr, 4u << 20));
  cluster.run_to_quiescence();
  // 64 blocks emit far more than 16 events; the cap must hold.
  EXPECT_EQ(rec.snapshot().size(), 16u);
  EXPECT_GT(rec.dropped(), 0u);
  EXPECT_EQ(rec.recorded(), rec.dropped() + 16u);
  rec.disable();
  rec.clear();
}
