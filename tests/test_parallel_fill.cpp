// Determinism of component-parallel max-min filling: set_fill_jobs(N)
// distributes independent component fills across N worker threads, and the
// contract (see flow_network.hpp) is that results are *byte-identical* for
// any N — same rates, same counters, same virtual timeline. This holds by
// construction (components share no mutable state and the merge is in
// deterministic component order), and this test is the regression gate:
// identical racked workloads run at fill_jobs 1 and 4 must produce
// bit-equal makespans and deterministic-counter values, and a direct
// FlowNetwork churn sequence must produce bit-equal rates.
#include <gtest/gtest.h>

#include <vector>

#include "harness/sim_harness.hpp"
#include "sim/cluster_profiles.hpp"
#include "sim/flow_network.hpp"
#include "util/random.hpp"

namespace rdmc {
namespace {

harness::ConcurrentResult run_racked(std::size_t fill_jobs) {
  harness::ConcurrentConfig cfg;
  cfg.profile = sim::racked_profile(64, 16, 3.5);
  cfg.group_size = 64;
  cfg.senders = 8;
  cfg.message_bytes = 2ull << 20;
  cfg.messages = 1;
  cfg.fill_jobs = fill_jobs;
  return harness::run_concurrent(cfg);
}

TEST(ParallelFill, ConcurrentRackedRunIsByteIdentical) {
  const auto serial = run_racked(1);
  const auto parallel = run_racked(4);

  // Bit-equality, not tolerance: the parallel dispatch must not change a
  // single operation in the virtual timeline.
  EXPECT_EQ(serial.makespan_seconds, parallel.makespan_seconds);
  EXPECT_EQ(serial.perf.events_processed, parallel.perf.events_processed);
  EXPECT_EQ(serial.perf.reallocations, parallel.perf.reallocations);
  EXPECT_EQ(serial.perf.filling_rounds, parallel.perf.filling_rounds);
  EXPECT_EQ(serial.perf.flows_touched, parallel.perf.flows_touched);
  EXPECT_EQ(serial.perf.max_component, parallel.perf.max_component);
  EXPECT_EQ(serial.perf.expand_rounds, parallel.perf.expand_rounds);
  EXPECT_EQ(serial.perf.component_fills, parallel.perf.component_fills);
  EXPECT_EQ(serial.perf.hier_fills, parallel.perf.hier_fills);
  EXPECT_EQ(serial.perf.hier_rounds, parallel.perf.hier_rounds);
  EXPECT_EQ(serial.perf.hier_fallbacks, parallel.perf.hier_fallbacks);
  // The racked shape is what the hierarchical solver exists for; make sure
  // this determinism gate actually covers it.
  EXPECT_GT(serial.perf.hier_fills, 0u);
}

TEST(ParallelFill, ChurnRatesAreBitEqualAcrossJobCounts) {
  sim::TopologyConfig cfg;
  cfg.num_nodes = 48;
  cfg.nic_gbps = 56.0;
  cfg.nodes_per_rack = 16;
  cfg.rack_uplink_gbps = 256.0;

  sim::Simulator sim1, sim4;
  sim::Topology topo1(cfg), topo4(cfg);
  sim::FlowNetwork net1(sim1, topo1);
  sim::FlowNetwork net4(sim4, topo4);
  net1.set_fill_jobs(1);
  net4.set_fill_jobs(4);

  util::Rng rng(2026);
  struct Live {
    sim::FlowId a, b;
  };
  std::vector<Live> live;
  for (std::size_t step = 0; step < 400; ++step) {
    if (live.size() < 4 || rng.uniform01() < 0.55) {
      NodeId src = static_cast<NodeId>(rng.uniform(0, cfg.num_nodes - 1));
      NodeId dst = static_cast<NodeId>(rng.uniform(0, cfg.num_nodes - 1));
      if (src == dst) dst = (dst + 1) % cfg.num_nodes;
      live.push_back({net1.start_flow(src, dst, 1e15, [](sim::SimTime) {}),
                      net4.start_flow(src, dst, 1e15, [](sim::SimTime) {})});
    } else {
      const std::size_t i = rng.uniform(0, live.size() - 1);
      net1.abort_flow(live[i].a);
      net4.abort_flow(live[i].b);
      live[i] = live.back();
      live.pop_back();
    }
    for (const Live& fl : live)
      ASSERT_EQ(net1.flow_rate(fl.a), net4.flow_rate(fl.b)) << "step " << step;
  }
  EXPECT_EQ(net1.counters().filling_rounds, net4.counters().filling_rounds);
  EXPECT_EQ(net1.counters().component_fills, net4.counters().component_fills);

  for (const Live& fl : live) {
    net1.abort_flow(fl.a);
    net4.abort_flow(fl.b);
  }
  sim1.run();
  sim4.run();
}

}  // namespace
}  // namespace rdmc
