// Parallel sweep executor: determinism and correctness guarantees.
//
// The executor's contract (harness/parallel.hpp) is that fanning a sweep
// over worker threads changes nothing observable: every index runs exactly
// once, results land in input-ordered slots, and a traced chaos campaign
// exports byte-for-byte the same JSON as a serial run — per-seed events are
// recorded into thread shards and merged back in seed order.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/chaos.hpp"
#include "harness/parallel.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace rdmc::harness {
namespace {

TEST(ParallelFor, RunsEveryIndexOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3},
                                 std::size_t{8}, std::size_t{100}}) {
    std::vector<std::atomic<int>> hits(57);
    parallel_for(hits.size(), jobs,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", jobs " << jobs;
  }
  // Empty range: no calls, no hang.
  parallel_for(0, 4, [](std::size_t) { FAIL() << "called on empty range"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(16, 4,
                   [](std::size_t i) {
                     if (i % 5 == 0) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

ChaosSpec smoke_spec() {
  ChaosSpec spec;
  spec.profile = sim::fractus_profile(8);
  spec.group_size = 8;
  spec.messages = 2;
  spec.message_bytes = 128u << 10;
  spec.group_options.block_size = 32 << 10;
  spec.faults.min_events = 1;
  spec.faults.max_events = 2;
  return spec;
}

void expect_same_result(const ChaosCampaignResult& a,
                        const ChaosCampaignResult& b) {
  EXPECT_EQ(a.seeds_run, b.seeds_run);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.root_lost, b.root_lost);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.fault_hit, b.fault_hit);
  EXPECT_EQ(a.total_reforms, b.total_reforms);
  EXPECT_EQ(a.total_deliveries, b.total_deliveries);
  EXPECT_DOUBLE_EQ(a.window_s, b.window_s);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].plan, b.failures[i].plan);
    EXPECT_EQ(a.failures[i].violations, b.failures[i].violations);
    EXPECT_EQ(a.failures[i].virtual_seconds, b.failures[i].virtual_seconds);
  }
}

TEST(ParallelSweep, ChaosCampaignIdenticalAcrossJobCounts) {
  const ChaosSpec spec = smoke_spec();
  const ChaosCampaignResult serial = run_chaos_campaign(1, 12, spec, 1);
  const ChaosCampaignResult par4 = run_chaos_campaign(1, 12, spec, 4);
  expect_same_result(serial, par4);
}

TEST(ParallelSweep, TraceJsonIdenticalToSerial) {
  const ChaosSpec spec = smoke_spec();
  auto& recorder = obs::TraceRecorder::instance();

  recorder.enable();
  run_chaos_campaign(1, 6, spec, 1);
  const std::string serial_json = obs::to_chrome_json(recorder.snapshot());
  recorder.disable();

  recorder.enable();
  run_chaos_campaign(1, 6, spec, 4);
  const std::string parallel_json = obs::to_chrome_json(recorder.snapshot());
  recorder.disable();

  ASSERT_FALSE(serial_json.empty());
  EXPECT_EQ(serial_json, parallel_json);
}

}  // namespace
}  // namespace rdmc::harness
