// Counters-based performance regression smoke.
//
// Wall-clock thresholds are useless in CI (shared, throttled runners), but
// the FlowNetwork work counters are deterministic for a fixed
// configuration: filling_rounds counts bottleneck saturations and
// flows_touched the sizes of recomputed sets. An algorithmic regression —
// losing incrementality, the exact fill degenerating toward the
// progressive O(rounds * touch) behaviour, the expansion loop failing to
// converge — inflates them by integer factors, far above the ceilings
// here, while legitimate changes move them by percents. The ceilings sit
// ~2x above the values measured when the exact fill landed (the
// pre-optimization progressive allocator exceeded them by ~10x).
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/sim_harness.hpp"
#include "sim/cluster_profiles.hpp"

namespace rdmc::harness {
namespace {

PerfStats run_fixed_fig8() {
  MulticastConfig cfg;
  cfg.profile = sim::sierra_profile(128);
  cfg.group_size = 128;
  cfg.message_bytes = 8ull << 20;
  cfg.block_size = 1 << 20;
  return run_multicast(cfg).perf;
}

TEST(PerfCounters, Fig8WorkCountersUnderCeilings) {
  const PerfStats p = run_fixed_fig8();
  // Measured at the exact-fill landing: 9485 rounds, 9754 touched, 1977
  // reallocations over 12233 events.
  EXPECT_LE(p.filling_rounds, 20000u);
  EXPECT_LE(p.flows_touched, 25000u);
  EXPECT_LE(p.reallocations, 4500u);
  EXPECT_LE(p.full_recomputes, 10u);
  // Locality: the average recomputed set stays far below the 127 active
  // flows of the steady-state pipeline.
  ASSERT_GT(p.reallocations, 0u);
  EXPECT_LE(p.flows_touched / p.reallocations, 25u);
}

TEST(PerfCounters, Fig8Deterministic) {
  const PerfStats a = run_fixed_fig8();
  const PerfStats b = run_fixed_fig8();
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.filling_rounds, b.filling_rounds);
  EXPECT_EQ(a.flows_touched, b.flows_touched);
  EXPECT_EQ(a.expand_rounds, b.expand_rounds);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  EXPECT_EQ(a.memo_misses, b.memo_misses);
}

// Datacenter-scale smoke behind an env guard: the 4096-node Fig 8
// pipeline is the configuration the hierarchical solver and the
// incremental machinery must hold flat, but it costs several seconds,
// so the default ctest run skips it. CI sets RDMC_BIG_SMOKE=1 on a
// dedicated step. Ceilings sit well above the currently measured values
// (5.6M rounds, 260k reallocations, 4.7M touched); losing incrementality
// at this scale overshoots them by integer factors.
TEST(PerfCounters, Fig8At4096WorkCountersUnderCeilings) {
  if (std::getenv("RDMC_BIG_SMOKE") == nullptr)
    GTEST_SKIP() << "set RDMC_BIG_SMOKE=1 to run the 4096-node smoke";
  MulticastConfig cfg;
  cfg.profile = sim::sierra_profile(4096);
  cfg.group_size = 4096;
  cfg.message_bytes = 32ull << 20;
  cfg.block_size = 1 << 20;
  const auto result = run_multicast(cfg);
  const PerfStats& p = result.perf;
  EXPECT_LE(p.filling_rounds, 25000000u);
  EXPECT_LE(p.reallocations, 520000u);
  EXPECT_LE(p.full_recomputes, 100u);
  ASSERT_GT(p.reallocations, 0u);
  // Locality: average recomputed set far below the ~4095 active flows.
  EXPECT_LE(p.flows_touched / p.reallocations, 400u);
  // At this scale components grow large enough for the saturation-cut
  // splitter to find real cuts; a zero here means the peel stopped
  // engaging (gating bug or cut detection regression).
  EXPECT_GT(p.split_cuts, 0u);
  // The virtual result is deterministic; pin it so a solver change that
  // moves rates at all (not just perf) fails loudly here too. The pin
  // moved from 0.030547233 when kMaxExpandRounds went 6 -> 32: expansions
  // that previously hit the round cap and took the fallback full-component
  // recompute now converge locally, and the two arithmetic paths differ at
  // the kExpandTol/ulp level. Both produce the unique max-min allocation
  // within tolerance (cross-check enforced in debug builds); the pinned
  // digits are simply the deterministic output of the current path.
  EXPECT_NEAR(result.total_seconds, 0.030547272, 1e-9);
}

}  // namespace
}  // namespace rdmc::harness
