// Counters-based performance regression smoke.
//
// Wall-clock thresholds are useless in CI (shared, throttled runners), but
// the FlowNetwork work counters are deterministic for a fixed
// configuration: filling_rounds counts bottleneck saturations and
// flows_touched the sizes of recomputed sets. An algorithmic regression —
// losing incrementality, the exact fill degenerating toward the
// progressive O(rounds * touch) behaviour, the expansion loop failing to
// converge — inflates them by integer factors, far above the ceilings
// here, while legitimate changes move them by percents. The ceilings sit
// ~2x above the values measured when the exact fill landed (the
// pre-optimization progressive allocator exceeded them by ~10x).
#include <gtest/gtest.h>

#include "harness/sim_harness.hpp"
#include "sim/cluster_profiles.hpp"

namespace rdmc::harness {
namespace {

PerfStats run_fixed_fig8() {
  MulticastConfig cfg;
  cfg.profile = sim::sierra_profile(128);
  cfg.group_size = 128;
  cfg.message_bytes = 8ull << 20;
  cfg.block_size = 1 << 20;
  return run_multicast(cfg).perf;
}

TEST(PerfCounters, Fig8WorkCountersUnderCeilings) {
  const PerfStats p = run_fixed_fig8();
  // Measured at the exact-fill landing: 9485 rounds, 9754 touched, 1977
  // reallocations over 12233 events.
  EXPECT_LE(p.filling_rounds, 20000u);
  EXPECT_LE(p.flows_touched, 25000u);
  EXPECT_LE(p.reallocations, 4500u);
  EXPECT_LE(p.full_recomputes, 10u);
  // Locality: the average recomputed set stays far below the 127 active
  // flows of the steady-state pipeline.
  ASSERT_GT(p.reallocations, 0u);
  EXPECT_LE(p.flows_touched / p.reallocations, 25u);
}

TEST(PerfCounters, Fig8Deterministic) {
  const PerfStats a = run_fixed_fig8();
  const PerfStats b = run_fixed_fig8();
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.filling_rounds, b.filling_rounds);
  EXPECT_EQ(a.flows_touched, b.flows_touched);
  EXPECT_EQ(a.expand_rounds, b.expand_rounds);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  EXPECT_EQ(a.memo_misses, b.memo_misses);
}

}  // namespace
}  // namespace rdmc::harness
