// End-to-end RDMC over the threaded MemFabric: real concurrency, real byte
// movement, data integrity verified for every algorithm across group sizes
// and message sizes (including non-power-of-two groups, sub-block messages
// and partial final blocks).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "baselines/mpi_bcast.hpp"
#include "core/group.hpp"
#include "core/rdmc.hpp"
#include "fabric/mem_fabric.hpp"
#include "util/random.hpp"

namespace rdmc {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> random_payload(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::byte> data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng());
  return data;
}

/// An in-process cluster: one fabric, one rdmc::Node per member, plus
/// delivery bookkeeping with waiting helpers.
class Cluster {
 public:
  explicit Cluster(std::size_t n) : fabric_(n), received_(n) {
    for (std::size_t i = 0; i < n; ++i)
      nodes_.push_back(
          std::make_unique<Node>(fabric_, static_cast<NodeId>(i)));
  }

  ~Cluster() {
    // Detach the Nodes (synchronises with in-flight handlers) before the
    // bookkeeping members those handlers write to are destroyed.
    nodes_.clear();
    fabric_.stop();
  }

  Node& node(std::size_t i) { return *nodes_[i]; }
  fabric::MemFabric& fabric() { return fabric_; }
  std::size_t size() const { return nodes_.size(); }

  /// Create the group on every member (any creation order).
  void create_group_everywhere(GroupId id, std::vector<NodeId> members,
                               GroupOptions options) {
    for (NodeId m : members) {
      const auto rc = nodes_[m]->create_group(
          id, members, options,
          [this, m](std::size_t size) {
            std::lock_guard lock(mutex_);
            auto& bufs = received_[m];
            bufs.emplace_back(size);
            return fabric::MemoryView{bufs.back().data(), size};
          },
          [this, m](std::byte*, std::size_t) {
            std::lock_guard lock(mutex_);
            ++delivered_[m];
            cv_.notify_all();
          },
          [this](GroupId g, NodeId suspect) {
            std::lock_guard lock(mutex_);
            failures_.emplace_back(g, suspect);
            cv_.notify_all();
          });
      ASSERT_TRUE(rc) << "create_group failed on member " << m;
    }
  }

  bool wait_delivered(NodeId member, std::size_t count,
                      std::chrono::seconds timeout = 20s) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout,
                        [&] { return delivered_[member] >= count; });
  }

  bool wait_failures(std::size_t count,
                     std::chrono::seconds timeout = 20s) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout,
                        [&] { return failures_.size() >= count; });
  }

  const std::vector<std::byte>& received(NodeId member, std::size_t idx) {
    std::lock_guard lock(mutex_);
    return received_[member][idx];
  }

  std::size_t failure_count() {
    std::lock_guard lock(mutex_);
    return failures_.size();
  }

 private:
  fabric::MemFabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<std::vector<std::byte>>> received_;
  std::map<NodeId, std::size_t> delivered_;
  std::vector<std::pair<GroupId, NodeId>> failures_;
};

std::vector<NodeId> all_members(std::size_t n) {
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  return members;
}

// ------------------------------------------- parameterized integrity sweep --

struct E2ECase {
  sched::Algorithm algorithm;
  std::size_t n;
  std::size_t message_size;
  std::size_t block_size;
};

class EndToEnd : public ::testing::TestWithParam<E2ECase> {};

TEST_P(EndToEnd, DeliversExactBytes) {
  const E2ECase c = GetParam();
  Cluster cluster(c.n);
  GroupOptions options;
  options.algorithm = c.algorithm;
  options.block_size = c.block_size;
  cluster.create_group_everywhere(1, all_members(c.n), options);

  auto payload = random_payload(c.message_size, 0xABCD + c.n);
  ASSERT_TRUE(cluster.node(0).send(1, payload.data(), payload.size()));
  for (std::size_t m = 1; m < c.n; ++m) {
    ASSERT_TRUE(cluster.wait_delivered(static_cast<NodeId>(m), 1))
        << "member " << m << " never delivered";
    const auto& got = cluster.received(static_cast<NodeId>(m), 0);
    ASSERT_EQ(got.size(), payload.size());
    EXPECT_EQ(std::memcmp(got.data(), payload.data(), payload.size()), 0)
        << "member " << m << " got corrupted data";
  }
}

std::vector<E2ECase> e2e_cases() {
  std::vector<E2ECase> cases;
  for (sched::Algorithm a :
       {sched::Algorithm::kSequential, sched::Algorithm::kChain,
        sched::Algorithm::kBinomialTree,
        sched::Algorithm::kBinomialPipeline}) {
    for (std::size_t n : {2, 3, 4, 5, 7, 8, 11, 16}) {
      cases.push_back({a, n, 256 * 1024 + 37, 16 * 1024});
    }
  }
  // Size edge cases on the flagship algorithm.
  for (std::size_t size :
       {std::size_t{1}, std::size_t{100}, std::size_t{16 * 1024},
        std::size_t{16 * 1024 + 1}, std::size_t{1024 * 1024}}) {
    cases.push_back(
        {sched::Algorithm::kBinomialPipeline, 6, size, 16 * 1024});
  }
  // Tiny blocks stress the credit flow.
  cases.push_back({sched::Algorithm::kBinomialPipeline, 8, 64 * 1024, 512});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEnd, ::testing::ValuesIn(e2e_cases()),
    [](const ::testing::TestParamInfo<E2ECase>& info) {
      return std::string(algorithm_name(info.param.algorithm)) + "_n" +
             std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.message_size) + "_bs" +
             std::to_string(info.param.block_size);
    });

// -------------------------------------------------------- specific cases --

TEST(RdmcMem, SequenceOfMessagesInOrder) {
  constexpr std::size_t kMessages = 12;
  Cluster cluster(4);
  GroupOptions options;
  options.block_size = 8 * 1024;
  cluster.create_group_everywhere(3, all_members(4), options);

  std::vector<std::vector<std::byte>> payloads;
  for (std::size_t i = 0; i < kMessages; ++i)
    payloads.push_back(random_payload(1000 * (i + 1) + i, 100 + i));
  for (auto& p : payloads)
    ASSERT_TRUE(cluster.node(0).send(3, p.data(), p.size()));

  for (NodeId m = 1; m < 4; ++m) {
    ASSERT_TRUE(cluster.wait_delivered(m, kMessages));
    for (std::size_t i = 0; i < kMessages; ++i) {
      const auto& got = cluster.received(m, i);
      ASSERT_EQ(got.size(), payloads[i].size()) << "order broken";
      EXPECT_EQ(std::memcmp(got.data(), payloads[i].data(), got.size()), 0);
    }
  }
}

TEST(RdmcMem, MpiBaselineSchedule) {
  Cluster cluster(8);
  GroupOptions options;
  options.block_size = 4 * 1024;
  options.make_schedule = [](std::size_t n, std::size_t rank) {
    return std::make_unique<baseline::MpiBcastSchedule>(n, rank);
  };
  cluster.create_group_everywhere(5, all_members(8), options);
  auto payload = random_payload(300 * 1024 + 11, 42);
  ASSERT_TRUE(cluster.node(0).send(5, payload.data(), payload.size()));
  for (NodeId m = 1; m < 8; ++m) {
    ASSERT_TRUE(cluster.wait_delivered(m, 1));
    const auto& got = cluster.received(m, 0);
    EXPECT_EQ(std::memcmp(got.data(), payload.data(), payload.size()), 0);
  }
}

TEST(RdmcMem, HybridSchedule) {
  constexpr std::size_t kNodes = 12;
  Cluster cluster(kNodes);
  GroupOptions options;
  options.block_size = 8 * 1024;
  std::vector<std::uint32_t> racks(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i)
    racks[i] = static_cast<std::uint32_t>(i / 4);
  options.hybrid_racks = racks;
  cluster.create_group_everywhere(9, all_members(kNodes), options);
  auto payload = random_payload(200 * 1024 + 3, 77);
  ASSERT_TRUE(cluster.node(0).send(9, payload.data(), payload.size()));
  for (NodeId m = 1; m < kNodes; ++m) {
    ASSERT_TRUE(cluster.wait_delivered(m, 1));
    const auto& got = cluster.received(m, 0);
    EXPECT_EQ(std::memcmp(got.data(), payload.data(), payload.size()), 0);
  }
}

TEST(RdmcMem, OverlappingGroupsDifferentSenders) {
  // The Fig 10 pattern: identical membership, k groups, k senders.
  constexpr std::size_t kNodes = 6;
  Cluster cluster(kNodes);
  for (std::size_t g = 0; g < kNodes; ++g) {
    std::vector<NodeId> members;
    members.push_back(static_cast<NodeId>(g));  // rotate the root
    for (std::size_t i = 0; i < kNodes; ++i)
      if (i != g) members.push_back(static_cast<NodeId>(i));
    GroupOptions options;
    options.block_size = 8 * 1024;
    cluster.create_group_everywhere(static_cast<GroupId>(g), members,
                                    options);
  }
  std::vector<std::vector<std::byte>> payloads;
  for (std::size_t g = 0; g < kNodes; ++g) {
    payloads.push_back(random_payload(64 * 1024 + g, 500 + g));
    ASSERT_TRUE(cluster.node(g).send(static_cast<GroupId>(g),
                                     payloads[g].data(),
                                     payloads[g].size()));
  }
  // Every node sees one completion per group it roots (1) plus one
  // delivery per other group (5); waiting for all 6 also covers the
  // documented buffer-lifetime contract (payloads freed only after the
  // root's own completion).
  for (NodeId m = 0; m < kNodes; ++m)
    ASSERT_TRUE(cluster.wait_delivered(m, kNodes));
}

TEST(RdmcMem, NonRootCannotSend) {
  Cluster cluster(3);
  cluster.create_group_everywhere(1, all_members(3), GroupOptions{});
  std::vector<std::byte> payload(100);
  EXPECT_FALSE(cluster.node(1).send(1, payload.data(), payload.size()));
  EXPECT_FALSE(cluster.node(2).send(1, payload.data(), payload.size()));
}

TEST(RdmcMem, InvalidArgumentsRejected) {
  Cluster cluster(3);
  cluster.create_group_everywhere(1, all_members(3), GroupOptions{});
  std::vector<std::byte> payload(100);
  EXPECT_FALSE(cluster.node(0).send(99, payload.data(), payload.size()));
  EXPECT_FALSE(cluster.node(0).send(1, payload.data(), 0));
  // Duplicate group id.
  EXPECT_FALSE(cluster.node(0).create_group(
      1, all_members(3), GroupOptions{},
      [](std::size_t) { return fabric::MemoryView{}; },
      [](std::byte*, std::size_t) {}));
  // Group of one.
  EXPECT_FALSE(cluster.node(0).create_group(
      2, {0}, GroupOptions{},
      [](std::size_t) { return fabric::MemoryView{}; },
      [](std::byte*, std::size_t) {}));
}

TEST(RdmcMem, DestroyGroupReportsCleanClose) {
  Cluster cluster(3);
  cluster.create_group_everywhere(1, all_members(3), GroupOptions{});
  auto payload = random_payload(10000, 1);
  ASSERT_TRUE(cluster.node(0).send(1, payload.data(), payload.size()));
  for (NodeId m = 1; m < 3; ++m) ASSERT_TRUE(cluster.wait_delivered(m, 1));
  // Clean close after a successful transfer (§4.6: a successful close
  // means every message reached every destination).
  EXPECT_TRUE(cluster.node(0).destroy_group(1));
  EXPECT_FALSE(cluster.node(0).destroy_group(1));  // already gone
}

TEST(RdmcMem, CreateDestroyChurn) {
  // Groups come and go constantly in real deployments ("RDMC is
  // inexpensive to instantiate", §1). Cycle many groups with fresh ids on
  // one cluster and verify each works and unregisters cleanly.
  Cluster cluster(4);
  for (GroupId id = 1; id <= 12; ++id) {
    GroupOptions options;
    options.block_size = 4096;
    options.algorithm = (id % 2) ? sched::Algorithm::kBinomialPipeline
                                 : sched::Algorithm::kChain;
    cluster.create_group_everywhere(id, all_members(4), options);
    auto payload = random_payload(20000 + id, 900 + id);
    ASSERT_TRUE(cluster.node(0).send(id, payload.data(), payload.size()));
    for (NodeId m = 1; m < 4; ++m)
      ASSERT_TRUE(cluster.wait_delivered(m, static_cast<std::size_t>(id)))
          << "group " << id;
    for (NodeId m = 0; m < 4; ++m)
      EXPECT_TRUE(cluster.node(m).destroy_group(id));
  }
}

TEST(RdmcMem, SendFromCompletionCallback) {
  // Root chains the next send from inside the completion callback
  // (re-entrancy through the recursive lock).
  fabric::MemFabric fabric(2);
  Node root(fabric, 0), leaf(fabric, 1);
  std::mutex m;
  std::condition_variable cv;
  int delivered = 0;
  std::vector<std::byte> buf(1 << 16);
  std::vector<std::byte> payload = random_payload(40000, 3);
  int sends_left = 3;

  ASSERT_TRUE(leaf.create_group(
      1, {0, 1}, GroupOptions{},
      [&](std::size_t size) { return fabric::MemoryView{buf.data(), size}; },
      [&](std::byte*, std::size_t) {
        std::lock_guard lock(m);
        ++delivered;
        cv.notify_all();
      }));
  ASSERT_TRUE(root.create_group(
      1, {0, 1}, GroupOptions{},
      [](std::size_t) { return fabric::MemoryView{}; },
      [&](std::byte*, std::size_t) {
        if (--sends_left > 0)
          root.send(1, payload.data(), payload.size());
      }));
  ASSERT_TRUE(root.send(1, payload.data(), payload.size()));
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(20),
                          [&] { return delivered >= 3; }));
}

TEST(RdmcMem, GroupStatsAccumulate) {
  Cluster cluster(4);
  GroupOptions options;
  options.block_size = 4 * 1024;
  cluster.create_group_everywhere(1, all_members(4), options);
  auto payload = random_payload(64 * 1024, 9);
  ASSERT_TRUE(cluster.node(0).send(1, payload.data(), payload.size()));
  for (NodeId m = 1; m < 4; ++m) ASSERT_TRUE(cluster.wait_delivered(m, 1));
  const Group* root = cluster.node(0).group(1);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->stats().messages_sent, 1u);
  EXPECT_GT(root->stats().blocks_sent, 0u);
  const Group* leaf = cluster.node(2).group(1);
  EXPECT_EQ(leaf->stats().messages_delivered, 1u);
  EXPECT_EQ(leaf->stats().blocks_received, 16u);
}

// --------------------------------------------------------------- failures --

TEST(RdmcFailure, LinkBreakPropagatesToAllMembers) {
  Cluster cluster(5);
  GroupOptions options;
  options.block_size = 4 * 1024;
  cluster.create_group_everywhere(1, all_members(5), options);
  // Break a link inside the overlay; every member must learn of the
  // failure via relaying (§3 item 6).
  cluster.fabric().break_link(0, 1);
  ASSERT_TRUE(cluster.wait_failures(5));
  for (NodeId m = 0; m < 5; ++m)
    EXPECT_TRUE(cluster.node(m).group_failed(1)) << "member " << m;
}

TEST(RdmcFailure, CrashMidTransfer) {
  Cluster cluster(4);
  GroupOptions options;
  options.block_size = 1024;
  cluster.create_group_everywhere(1, all_members(4), options);
  auto payload = random_payload(4 * 1024 * 1024, 5);
  ASSERT_TRUE(cluster.node(0).send(1, payload.data(), payload.size()));
  cluster.fabric().crash_node(2);
  // All four members report (the crashed node observes its own links
  // breaking too).
  ASSERT_TRUE(cluster.wait_failures(4));
  EXPECT_TRUE(cluster.node(0).group_failed(1));
  EXPECT_TRUE(cluster.node(1).group_failed(1));
  EXPECT_TRUE(cluster.node(3).group_failed(1));
  // Sends on a failed group are rejected; destroy reports unclean close.
  EXPECT_FALSE(cluster.node(0).send(1, payload.data(), payload.size()));
  EXPECT_FALSE(cluster.node(0).destroy_group(1));
}

TEST(RdmcFailure, SelfRepairByRecreatingGroup) {
  // §3 item 6: the application self-repairs by closing the old session and
  // initiating a new one among survivors.
  Cluster cluster(4);
  cluster.create_group_everywhere(1, all_members(4), GroupOptions{});
  cluster.fabric().crash_node(3);
  ASSERT_TRUE(cluster.wait_failures(4));
  for (NodeId m = 0; m < 3; ++m) cluster.node(m).destroy_group(1);

  // Survivors re-form on a fresh group id (fresh channels).
  cluster.create_group_everywhere(2, {0, 1, 2}, GroupOptions{});
  auto payload = random_payload(100 * 1024, 8);
  ASSERT_TRUE(cluster.node(0).send(2, payload.data(), payload.size()));
  for (NodeId m = 1; m < 3; ++m) {
    ASSERT_TRUE(cluster.wait_delivered(m, 1));
    const auto& got = cluster.received(m, 0);
    EXPECT_EQ(std::memcmp(got.data(), payload.data(), payload.size()), 0);
  }
}

TEST(RdmcFailure, UnaffectedGroupKeepsWorking) {
  // A failure in one group must not disturb a disjoint group.
  Cluster cluster(6);
  cluster.create_group_everywhere(1, {0, 1, 2}, GroupOptions{});
  cluster.create_group_everywhere(2, {3, 4, 5}, GroupOptions{});
  cluster.fabric().break_link(0, 1);
  ASSERT_TRUE(cluster.wait_failures(3));
  auto payload = random_payload(50 * 1024, 6);
  ASSERT_TRUE(cluster.node(3).send(2, payload.data(), payload.size()));
  ASSERT_TRUE(cluster.wait_delivered(4, 1));
  ASSERT_TRUE(cluster.wait_delivered(5, 1));
  EXPECT_FALSE(cluster.node(3).group_failed(2));
}

}  // namespace
}  // namespace rdmc
