// End-to-end RDMC over SimFabric: virtual-time behaviour must match the
// paper's first-order performance models — the foundation every bench
// stands on.
#include <gtest/gtest.h>

#include <cstring>

#include "analysis/model.hpp"
#include "baselines/mpi_bcast.hpp"
#include "harness/sim_harness.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

namespace rdmc::harness {
namespace {

using sched::Algorithm;

sim::ClusterProfile ideal_fractus(std::size_t nodes) {
  auto p = sim::fractus_profile(nodes);
  p.preemption.probability = 0.0;  // deterministic timing checks
  return p;
}

MulticastConfig base_config(std::size_t n, std::uint64_t bytes,
                            Algorithm algorithm) {
  MulticastConfig c;
  c.profile = ideal_fractus(std::max<std::size_t>(n, 16));
  c.group_size = n;
  c.message_bytes = bytes;
  c.algorithm = algorithm;
  c.ideal_software = true;  // compare against pure network models
  return c;
}

constexpr double kBps100G = 100e9 / 8.0;  // bytes/sec at 100 Gb/s

TEST(RdmcSim, SequentialMatchesModel) {
  // n-1 full-message copies through the root's tx port.
  const std::uint64_t bytes = 64ull << 20;
  for (std::size_t n : {2, 4, 8}) {
    auto r = run_multicast(base_config(n, bytes, Algorithm::kSequential));
    const double expect =
        static_cast<double>(bytes) * static_cast<double>(n - 1) / kBps100G;
    EXPECT_NEAR(r.total_seconds, expect, expect * 0.03) << "n=" << n;
  }
}

TEST(RdmcSim, BinomialPipelineMatchesModel) {
  // (l + k - 1) block times (paper §4.4).
  const std::uint64_t bytes = 64ull << 20;
  const std::size_t block = 1 << 20;
  for (std::size_t n : {2, 4, 8, 16}) {
    auto cfg = base_config(n, bytes, Algorithm::kBinomialPipeline);
    cfg.block_size = block;
    auto r = run_multicast(cfg);
    const double block_time = static_cast<double>(block) / kBps100G;
    const double expect = analysis::binomial_pipeline_time(
        n, bytes / block, block_time);
    // The asynchronous engine under fluid fair sharing runs within ~15% of
    // the lock-step model (real RDMC similarly runs 15-25% below line rate
    // on hardware — e.g. Table 1's 62 ms for a 51 ms ideal transfer).
    EXPECT_GE(r.total_seconds, expect * 0.99) << "n=" << n;
    EXPECT_LE(r.total_seconds, expect * 1.20) << "n=" << n;
  }
}

TEST(RdmcSim, ChainMatchesModel) {
  const std::uint64_t bytes = 64ull << 20;
  const std::size_t block = 1 << 20;
  auto cfg = base_config(8, bytes, Algorithm::kChain);
  cfg.block_size = block;
  auto r = run_multicast(cfg);
  const double block_time = static_cast<double>(block) / kBps100G;
  const double expect =
      analysis::chain_time(8, bytes / block, block_time);
  EXPECT_NEAR(r.total_seconds, expect, expect * 0.05);
}

TEST(RdmcSim, BinomialTreeMatchesModel) {
  const std::uint64_t bytes = 64ull << 20;
  const std::size_t block = 1 << 20;
  auto cfg = base_config(8, bytes, Algorithm::kBinomialTree);
  cfg.block_size = block;
  auto r = run_multicast(cfg);
  const double block_time = static_cast<double>(block) / kBps100G;
  const double expect =
      analysis::binomial_tree_time(8, bytes / block, block_time);
  EXPECT_NEAR(r.total_seconds, expect, expect * 0.05);
}

TEST(RdmcSim, AlgorithmOrderingLargeMessage) {
  // Fig 4a's shape: pipeline ~ chain < MPI < tree < sequential at n=16.
  const std::uint64_t bytes = 64ull << 20;
  auto run = [&](Algorithm a) {
    auto cfg = base_config(16, bytes, a);
    return run_multicast(cfg).total_seconds;
  };
  const double pipe = run(Algorithm::kBinomialPipeline);
  const double chain = run(Algorithm::kChain);
  const double tree = run(Algorithm::kBinomialTree);
  const double seq = run(Algorithm::kSequential);

  auto mpi_cfg = base_config(16, bytes, Algorithm::kBinomialPipeline);
  mpi_cfg.make_schedule = [](std::size_t n, std::size_t rank) {
    return std::make_unique<baseline::MpiBcastSchedule>(n, rank);
  };
  const double mpi = run_multicast(mpi_cfg).total_seconds;

  EXPECT_LT(pipe, tree);
  EXPECT_LT(tree, seq);
  EXPECT_LE(pipe, chain * 1.05);
  EXPECT_GT(mpi, pipe);          // MVAPICH between pipeline and tree-ish
  EXPECT_LT(mpi, seq);
  // Paper: MPI takes 1.03x-3x the binomial pipeline's time.
  EXPECT_LT(mpi / pipe, 3.5);
}

TEST(RdmcSim, ReplicationAlmostFree) {
  // Fig 8's headline: 127 vs 511 copies cost nearly the same.
  const std::uint64_t bytes = 32ull << 20;
  auto cfg128 = base_config(128, bytes, Algorithm::kBinomialPipeline);
  cfg128.profile = ideal_fractus(128);
  auto cfg512 = base_config(512, bytes, Algorithm::kBinomialPipeline);
  cfg512.profile = ideal_fractus(512);
  const double t128 = run_multicast(cfg128).total_seconds;
  const double t512 = run_multicast(cfg512).total_seconds;
  // Paper Fig 8: "whether making 127, 255 or 511 copies, the total time
  // required is almost the same" (their curve grows mildly too).
  EXPECT_LT(t512 / t128, 1.45);
  // While sequential scales linearly.
  auto seq128 = base_config(128, bytes, Algorithm::kSequential);
  seq128.profile = ideal_fractus(128);
  const double s128 = run_multicast(seq128).total_seconds;
  EXPECT_GT(s128 / t128, 20.0);
}

TEST(RdmcSim, PipelineSkewIsTiny) {
  // Receivers finish nearly simultaneously (§5.2.2).
  auto cfg = base_config(16, 64ull << 20, Algorithm::kBinomialPipeline);
  auto pipe = run_multicast(cfg);
  // All receivers finish within a small fraction of the transfer (the
  // paper: "binomial pipeline transfers complete nearly simultaneously").
  EXPECT_LT(pipe.skew_seconds, pipe.total_seconds * 0.15);
}

TEST(RdmcSim, BandwidthApproachesLineRateForLargeMessages) {
  auto cfg = base_config(4, 256ull << 20, Algorithm::kBinomialPipeline);
  auto r = run_multicast(cfg);
  EXPECT_GT(r.bandwidth_gbps, 90.0);
  EXPECT_LE(r.bandwidth_gbps, 100.5);
}

TEST(RdmcSim, SmallBlocksCostOverheadWithRealSoftware) {
  // Fig 6's left edge: tiny blocks => per-block software costs dominate.
  auto small = base_config(4, 16ull << 20, Algorithm::kBinomialPipeline);
  small.ideal_software = false;
  small.block_size = 16 * 1024;
  auto large = base_config(4, 16ull << 20, Algorithm::kBinomialPipeline);
  large.ideal_software = false;
  large.block_size = 1 << 20;
  EXPECT_GT(run_multicast(large).bandwidth_gbps,
            run_multicast(small).bandwidth_gbps);
}

TEST(RdmcSim, MultipleMessagesSustainThroughput) {
  auto cfg = base_config(8, 16ull << 20, Algorithm::kBinomialPipeline);
  cfg.messages = 8;
  auto r = run_multicast(cfg);
  // Messages are not pipelined (§5.1), so each message pays the l-step
  // refill; sustained rate stays within ~30% of line rate at this size.
  EXPECT_GT(r.bandwidth_gbps, 70.0);
}

TEST(RdmcSim, InterruptModeCheaperCpuSlightlySlower) {
  auto polling = base_config(4, 100ull << 20, Algorithm::kBinomialPipeline);
  polling.ideal_software = false;
  polling.completion_mode = fabric::CompletionMode::kPolling;
  auto interrupt = polling;
  interrupt.completion_mode = fabric::CompletionMode::kInterrupt;
  const auto rp = run_multicast(polling);
  const auto ri = run_multicast(interrupt);
  // Fig 11: minimal bandwidth impact for large transfers.
  EXPECT_LT(rp.total_seconds, ri.total_seconds);
  EXPECT_LT((ri.total_seconds - rp.total_seconds) / rp.total_seconds, 0.10);
}

TEST(RdmcSim, CrossChannelSpeedsUpChainSend) {
  // Fig 12: CORE-Direct removes the software relay delay (~5% on chain).
  auto normal = base_config(6, 100ull << 20, Algorithm::kChain);
  normal.ideal_software = false;
  auto offload = normal;
  offload.cross_channel = true;
  const auto rn = run_multicast(normal);
  const auto ro = run_multicast(offload);
  EXPECT_LT(ro.total_seconds, rn.total_seconds);
  EXPECT_DOUBLE_EQ(ro.root_cpu_fraction, 0.0);
}

TEST(RdmcSim, HybridBeatsFlatWithRandomPlacement) {
  // §4.3 Hybrid Algorithms: datacenters hide topology, so the flat
  // overlay is "built using random pairs of nodes [and] many links connect
  // nodes that reside in different racks" — most steps cross the
  // oversubscribed TOR. The topology-aware two-level pipeline pays the
  // rack leaders\' double duty but crosses the TOR once per block per
  // rack, and wins.
  auto apt = sim::apt_profile(64);
  apt.preemption.probability = 0.0;

  MulticastConfig flat;
  flat.profile = apt;
  flat.group_size = 64;
  flat.message_bytes = 64ull << 20;
  flat.ideal_software = true;
  flat.algorithm = Algorithm::kBinomialPipeline;
  // Random placement: shuffle member ranks across racks.
  std::vector<NodeId> shuffled(64);
  for (std::size_t i = 0; i < 64; ++i) shuffled[i] = static_cast<NodeId>(i);
  util::Rng rng(99);
  for (std::size_t i = 63; i > 0; --i)
    std::swap(shuffled[i], shuffled[rng.uniform(0, i)]);
  flat.members = shuffled;

  MulticastConfig hybrid = flat;
  hybrid.members.reset();  // rack-aware: ranks align with racks
  std::vector<std::uint32_t> racks(64);
  for (std::size_t i = 0; i < 64; ++i)
    racks[i] = static_cast<std::uint32_t>(i / 16);
  hybrid.hybrid_racks = racks;

  const auto rf = run_multicast(flat);
  const auto rh = run_multicast(hybrid);
  EXPECT_LT(rh.total_seconds, rf.total_seconds);
}

TEST(RdmcSim, ConcurrentSendersShareFabricFairly) {
  // Fig 10a shape: aggregate bandwidth grows with more senders and
  // approaches the fabric's bisection capacity.
  ConcurrentConfig one;
  one.profile = ideal_fractus(16);
  one.group_size = 8;
  one.senders = 1;
  one.message_bytes = 100ull << 20;
  one.messages = 2;
  ConcurrentConfig all = one;
  all.senders = 8;
  const auto r1 = run_concurrent(one);
  const auto r8 = run_concurrent(all);
  // For large messages one pipeline already saturates per-node NICs, so
  // aggregate goodput stays nearly flat as senders are added (Fig 10a\'s
  // 100 MB curves); the theoretical ceiling is C*n/(n-1).
  EXPECT_GT(r8.aggregate_gbps, r1.aggregate_gbps * 0.95);
  EXPECT_LE(r8.aggregate_gbps, 100.0 * 8.0 / 7.0 + 1);

  // Small messages: per-message latency and per-node CPU dominate; the
  // robust property (paper: "no sign of interference between concurrent
  // overlapping transfers") is that adding senders never collapses
  // aggregate goodput.
  ConcurrentConfig tiny = one;
  tiny.message_bytes = 64 * 1024;
  tiny.block_size = 16 * 1024;
  tiny.messages = 16;
  ConcurrentConfig tiny_all = tiny;
  tiny_all.senders = 8;
  const auto t1 = run_concurrent(tiny);
  const auto t8 = run_concurrent(tiny_all);
  EXPECT_GT(t8.aggregate_gbps, t1.aggregate_gbps * 0.8);
}

TEST(RdmcSim, OversubscribedTorCapsAggregate) {
  // Fig 10b: on Apt the TOR limits aggregate inter-rack goodput.
  ConcurrentConfig cfg;
  cfg.profile = sim::apt_profile(32);
  cfg.profile.preemption.probability = 0.0;
  cfg.group_size = 32;
  cfg.senders = 8;
  cfg.message_bytes = 16ull << 20;
  cfg.messages = 1;
  const auto r = run_concurrent(cfg);
  ConcurrentConfig flatcfg = cfg;
  flatcfg.profile = ideal_fractus(32);
  const auto rflat = run_concurrent(flatcfg);
  EXPECT_LT(r.aggregate_gbps, rflat.aggregate_gbps);
}

TEST(RdmcSim, SlowLinkDegradationBounded) {
  // §4.5 item 2: one slow link costs the pipeline little; it gates the
  // chain completely.
  auto run_with_slow = [&](Algorithm a, bool slow) {
    auto profile = ideal_fractus(16);
    MulticastConfig cfg;
    cfg.profile = profile;
    cfg.group_size = 16;
    cfg.message_bytes = 64ull << 20;
    cfg.ideal_software = true;
    cfg.algorithm = a;
    // Build manually so we can degrade a link before running.
    fabric::SimFabric::Options options;
    options.costs = sim::SoftwareCosts{0, 0, 0, 0, 1e18, 0};
    options.preemption = sim::PreemptionModel{0.0, 0.0};
    SimCluster cluster(cfg.profile, options, false);
    if (slow) {
      // Degrade a link both overlays use: (2,3) is a hypercube edge
      // (2 XOR 3 = 1) and a chain hop. 10 Gb/s is below the T/l level the
      // pipeline's 1/l duty cycle can hide, so both algorithms feel it.
      cluster.topology().set_pair_cap(2, 3, 10.0);
      cluster.topology().set_pair_cap(3, 2, 10.0);
    }
    std::vector<NodeId> members(16);
    for (std::size_t i = 0; i < 16; ++i) members[i] = i;
    GroupOptions go;
    go.algorithm = a;
    cluster.create_group(1, members, go);
    return cluster.run_one(1, cfg.message_bytes);
  };
  const double pipe_fast = run_with_slow(Algorithm::kBinomialPipeline, false);
  const double pipe_slow = run_with_slow(Algorithm::kBinomialPipeline, true);
  const double chain_fast = run_with_slow(Algorithm::kChain, false);
  const double chain_slow = run_with_slow(Algorithm::kChain, true);
  // Chain: every block crosses the 10x-degraded link; time ~10x.
  EXPECT_GT(chain_slow / chain_fast, 5.0);
  // Pipeline: the link carries only 1/l of the steps, so the slowdown is
  // bounded by ~ (T/T')/l plus slack effects — far below the chain's.
  EXPECT_LT(pipe_slow / pipe_fast, 4.0);
  EXPECT_LT(pipe_slow / pipe_fast, 0.5 * chain_slow / chain_fast);
  // And the paper's closed form is a valid lower bound on bandwidth.
  const double fraction = analysis::slow_link_fraction(16, 100.0, 10.0);
  EXPECT_GE(pipe_fast / pipe_slow + 0.02, fraction);
}

TEST(RdmcSim, DelayInjectionAddsBoundedTime) {
  // §4.5 item 1: epsilon of scheduling delay adds O(epsilon), not O(k x
  // epsilon), thanks to slack.
  auto quiet = base_config(8, 64ull << 20, Algorithm::kBinomialPipeline);
  quiet.ideal_software = false;
  quiet.profile.preemption.probability = 0.0;
  auto noisy = quiet;
  noisy.profile.preemption.probability = 0.02;
  noisy.profile.preemption.mean_duration_s = 100e-6;
  const double tq = run_multicast(quiet).total_seconds;
  const double tn = run_multicast(noisy).total_seconds;
  EXPECT_GE(tn, tq);
  EXPECT_LT(tn / tq, 1.6);
}

TEST(RdmcSim, DataIntegrityWithRealBuffers) {
  // Small sim run with real memory: bytes must arrive intact.
  auto profile = ideal_fractus(4);
  SimCluster cluster(profile);
  std::vector<NodeId> members{0, 1, 2, 3};
  std::vector<std::vector<std::byte>> bufs(4);
  std::vector<bool> delivered(4, false);
  GroupOptions go;
  go.block_size = 4096;
  for (NodeId m : members) {
    cluster.node(m).create_group(
        7, members, go,
        [&, m](std::size_t size) {
          bufs[m].assign(size, std::byte{0});
          return fabric::MemoryView{bufs[m].data(), size};
        },
        [&, m](std::byte*, std::size_t) { delivered[m] = true; });
  }
  std::vector<std::byte> payload(100000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i * 31);
  ASSERT_TRUE(cluster.node(0).send(7, payload.data(), payload.size()));
  cluster.sim().run();
  for (NodeId m = 1; m < 4; ++m) {
    ASSERT_TRUE(delivered[m]);
    ASSERT_EQ(bufs[m].size(), payload.size());
    EXPECT_EQ(std::memcmp(bufs[m].data(), payload.data(), payload.size()),
              0);
  }
}

TEST(RdmcSim, DeterministicAcrossRuns) {
  auto cfg = base_config(8, 32ull << 20, Algorithm::kBinomialPipeline);
  cfg.ideal_software = false;  // includes seeded preemption noise
  const auto a = run_multicast(cfg);
  const auto b = run_multicast(cfg);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
}

}  // namespace
}  // namespace rdmc::harness
