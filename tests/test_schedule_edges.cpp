// Edge cases and structural invariants across all schedules that the main
// property sweep doesn't pin down explicitly.
#include <gtest/gtest.h>

#include "baselines/mpi_bcast.hpp"
#include "sched/binomial_pipeline.hpp"
#include "sched/hybrid.hpp"
#include "sched/schedule_audit.hpp"
#include "util/bitops.hpp"

namespace rdmc::sched {
namespace {

TEST(ScheduleEdges, TwoNodeGroupIsDirectTransfer) {
  // n=2 degenerates to a plain unicast of k blocks for every algorithm.
  for (Algorithm a :
       {Algorithm::kSequential, Algorithm::kChain, Algorithm::kBinomialTree,
        Algorithm::kBinomialPipeline}) {
    const AuditResult r = audit_algorithm(a, 2, 7);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.total_transfers, 7u);
    EXPECT_EQ(r.steps_used, 7u) << algorithm_name(a);
  }
}

TEST(ScheduleEdges, SingleBlockMessages) {
  // k=1: the pipeline collapses to a binomial-spread (l steps); chain to a
  // line (n-1 steps).
  const AuditResult pipe =
      audit_algorithm(Algorithm::kBinomialPipeline, 16, 1);
  EXPECT_EQ(pipe.steps_used, 4u);
  const AuditResult chain = audit_algorithm(Algorithm::kChain, 16, 1);
  EXPECT_EQ(chain.steps_used, 15u);
}

TEST(ScheduleEdges, StepsMonotoneInBlocks) {
  for (Algorithm a :
       {Algorithm::kSequential, Algorithm::kChain, Algorithm::kBinomialTree,
        Algorithm::kBinomialPipeline}) {
    auto s = make_schedule(a, 12, 3);
    std::size_t prev = 0;
    for (std::size_t k = 1; k <= 40; ++k) {
      const std::size_t steps = s->num_steps(k);
      EXPECT_GE(steps, prev) << algorithm_name(a) << " k=" << k;
      prev = steps;
    }
  }
}

TEST(ScheduleEdges, QueriesBeyondBoundAreEmpty) {
  for (Algorithm a :
       {Algorithm::kSequential, Algorithm::kChain, Algorithm::kBinomialTree,
        Algorithm::kBinomialPipeline}) {
    for (std::size_t rank : {0, 3, 7}) {
      auto s = make_schedule(a, 8, rank);
      const std::size_t bound = s->num_steps(5);
      for (std::size_t j = bound; j < bound + 4; ++j) {
        EXPECT_TRUE(s->sends_at(5, j).empty()) << algorithm_name(a);
        EXPECT_TRUE(s->recvs_at(5, j).empty()) << algorithm_name(a);
      }
    }
  }
}

TEST(ScheduleEdges, NoSelfTransfers) {
  for (Algorithm a :
       {Algorithm::kSequential, Algorithm::kChain, Algorithm::kBinomialTree,
        Algorithm::kBinomialPipeline}) {
    for (std::size_t n : {5, 8, 13}) {
      for (std::size_t rank = 0; rank < n; ++rank) {
        auto s = make_schedule(a, n, rank);
        for (std::size_t j = 0; j < s->num_steps(9); ++j) {
          for (const auto& t : s->sends_at(9, j))
            EXPECT_NE(t.peer, rank) << algorithm_name(a);
          for (const auto& t : s->recvs_at(9, j))
            EXPECT_NE(t.peer, rank) << algorithm_name(a);
        }
      }
    }
  }
}

TEST(ScheduleEdges, RootNeverReceivesInNativeAlgorithms) {
  for (Algorithm a :
       {Algorithm::kSequential, Algorithm::kChain, Algorithm::kBinomialTree,
        Algorithm::kBinomialPipeline}) {
    auto s = make_schedule(a, 16, 0);
    for (std::size_t j = 0; j < s->num_steps(12); ++j)
      EXPECT_TRUE(s->recvs_at(12, j).empty()) << algorithm_name(a);
  }
}

TEST(ScheduleEdges, HybridWithSingleRackEqualsFlatPipeline) {
  // One rack means no inter level: the hybrid must behave exactly like
  // the flat binomial pipeline.
  const std::size_t n = 8, k = 6;
  std::vector<std::uint32_t> racks(n, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    HybridSchedule hybrid(n, rank, racks);
    BinomialPipelineSchedule flat(n, rank);
    for (std::size_t j = 0; j < flat.num_steps(k) + 2; ++j) {
      // Hybrid offsets intra steps by 1.
      const auto hs = hybrid.sends_at(k, j + 1);
      const auto fs = flat.sends_at(k, j);
      EXPECT_EQ(hs, fs) << "rank " << rank << " step " << j;
    }
  }
}

TEST(ScheduleEdges, HybridPerNodeRacksOk) {
  // Degenerate: every node its own rack => pure inter-level pipeline.
  const std::size_t n = 6;
  std::vector<std::uint32_t> racks(n);
  for (std::size_t i = 0; i < n; ++i) racks[i] = static_cast<std::uint32_t>(i);
  const AuditResult r = audit_schedule(
      [&](std::size_t rank) {
        return std::make_unique<HybridSchedule>(n, rank, racks);
      },
      n, 5);
  EXPECT_TRUE(r.consistent);
  EXPECT_TRUE(r.complete);
}

TEST(ScheduleEdges, PipelinePlanCacheSharesAcrossRanks) {
  // Two instances for the same (n, k) must agree (shared pruned plan) and
  // repeated queries must be stable.
  BinomialPipelineSchedule a(11, 4), b(11, 4);
  for (std::size_t j = 0; j < a.num_steps(9); ++j) {
    EXPECT_EQ(a.sends_at(9, j), b.sends_at(9, j));
    EXPECT_EQ(a.sends_at(9, j), a.sends_at(9, j));
  }
}

TEST(ScheduleEdges, MpiFallbackBoundary) {
  // k = n-1 uses the tree; k = n uses scatter+allgather; both complete.
  const std::size_t n = 8;
  for (std::size_t k : {n - 1, n, n + 1}) {
    const AuditResult r = audit_schedule(
        [&](std::size_t rank) {
          return std::make_unique<baseline::MpiBcastSchedule>(n, rank);
        },
        n, k);
    EXPECT_TRUE(r.complete) << "k=" << k;
    EXPECT_TRUE(r.consistent) << "k=" << k;
  }
}

TEST(ScheduleEdges, LargeOddGroupAudit) {
  const AuditResult r = audit_algorithm(Algorithm::kBinomialPipeline, 321, 17);
  EXPECT_TRUE(r.consistent);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.duplicate_deliveries, 0u);
  EXPECT_EQ(r.total_transfers, 320u * 17u);
}

}  // namespace
}  // namespace rdmc::sched
