// Property suite for the block-transfer schedules (paper §4.3-4.5).
//
// Every algorithm is executed in lock-step by the auditor across a sweep of
// group sizes and block counts, checking the invariants the engine depends
// on (send/recv mirroring, causality, completeness, step bounds) and the
// paper's analytical claims (step count l+k-1, slack ~2, 1/l link usage).
#include <gtest/gtest.h>

#include "analysis/model.hpp"
#include "baselines/mpi_bcast.hpp"
#include "sched/binomial_pipeline.hpp"
#include "sched/binomial_tree.hpp"
#include "sched/chain.hpp"
#include "sched/hybrid.hpp"
#include "sched/schedule_audit.hpp"
#include "sched/sequential.hpp"
#include "util/bitops.hpp"

namespace rdmc::sched {
namespace {

// ------------------------------------------------ parameterized invariants --

struct Case {
  Algorithm algorithm;
  std::size_t n;
  std::size_t k;
};

std::vector<Case> base_cases() {
  std::vector<Case> cases;
  for (Algorithm a :
       {Algorithm::kSequential, Algorithm::kChain, Algorithm::kBinomialTree,
        Algorithm::kBinomialPipeline}) {
    for (std::size_t n : {2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17, 24, 31,
                          32, 33, 48, 64}) {
      for (std::size_t k : {1, 2, 3, 4, 5, 8, 13, 16, 32}) {
        cases.push_back({a, n, k});
      }
    }
  }
  return cases;
}

class ScheduleInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(ScheduleInvariants, AuditPasses) {
  const Case c = GetParam();
  const AuditResult r = audit_algorithm(c.algorithm, c.n, c.k);
  EXPECT_TRUE(r.consistent) << "send/recv schedules disagree";
  EXPECT_TRUE(r.complete) << "some node missed a block";
  EXPECT_EQ(r.deferred_sends, 0u)
      << "base algorithms must be causal in lock-step";
  EXPECT_TRUE(r.within_bound)
      << "used " << r.steps_used << " > bound";
}

TEST_P(ScheduleInvariants, ExactlyOnceDelivery) {
  // Every algorithm delivers each block to each node exactly once; for
  // non-power-of-two pipelines this is guaranteed by the pruned host-level
  // plan (vertex-aliasing duplicates are dropped deterministically).
  const Case c = GetParam();
  const AuditResult r = audit_algorithm(c.algorithm, c.n, c.k);
  EXPECT_EQ(r.duplicate_deliveries, 0u);
  EXPECT_EQ(r.total_transfers, (c.n - 1) * c.k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleInvariants, ::testing::ValuesIn(base_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(algorithm_name(info.param.algorithm)) + "_n" +
             std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

// ----------------------------------------------------------- step bounds --

TEST(BinomialPipeline, StepCountMatchesClosedForm) {
  for (std::size_t n : {2, 4, 8, 16, 32, 64, 128}) {
    for (std::size_t k : {1, 2, 7, 16, 64}) {
      BinomialPipelineSchedule s(n, 0);
      EXPECT_EQ(s.num_steps(k), util::ceil_log2(n) + k - 1);
      EXPECT_EQ(s.num_steps(k), analysis::pipeline_steps(n, k));
    }
  }
}

TEST(BinomialPipeline, Pow2FinishesExactlyAtBound) {
  // For powers of two every node finishes by step l+k-1 and the last
  // receivers finish exactly then (the pipeline never ends early).
  for (std::size_t n : {4, 8, 16, 32}) {
    for (std::size_t k : {4, 16}) {
      const AuditResult r =
          audit_algorithm(Algorithm::kBinomialPipeline, n, k);
      EXPECT_EQ(r.steps_used, util::ceil_log2(n) + k - 1) << n << " " << k;
    }
  }
}

TEST(BinomialPipeline, NonPow2WithinTwoExtraSteps) {
  // Paper §4.3: "if the number of nodes isn't a power of 2, the final
  // receipt spreads over two asynchronous steps".
  for (std::size_t n : {3, 5, 6, 7, 9, 11, 13, 20, 33, 63}) {
    for (std::size_t k : {1, 4, 16}) {
      const AuditResult r =
          audit_algorithm(Algorithm::kBinomialPipeline, n, k);
      EXPECT_TRUE(r.complete);
      EXPECT_LE(r.steps_used, util::ceil_log2(n) + k - 1) << n << " " << k;
    }
  }
}

TEST(Sequential, RootSendsEverything) {
  const AuditResult r = audit_algorithm(Algorithm::kSequential, 8, 10);
  EXPECT_EQ(r.total_transfers, 7u * 10u);
  EXPECT_EQ(r.steps_used, 70u);
}

TEST(Chain, PipelineDepth) {
  const AuditResult r = audit_algorithm(Algorithm::kChain, 8, 10);
  // n + k - 2 steps: fill 7 hops then stream 9 more blocks.
  EXPECT_EQ(r.steps_used, 16u);
  EXPECT_EQ(r.total_transfers, 7u * 10u);
}

TEST(BinomialTree, LogRounds) {
  const AuditResult r = audit_algorithm(Algorithm::kBinomialTree, 16, 5);
  EXPECT_EQ(r.steps_used, 4u * 5u);
  // Every non-root node receives each block exactly once.
  EXPECT_EQ(r.total_transfers, 15u * 5u);
}

// ------------------------------------------------------- §4.5 properties --

TEST(BinomialPipeline, SlackMatchesClosedForm) {
  // avg steady slack = 2(1 - (l-1)/(n-2)) (§4.5 item 3).
  for (std::size_t n : {8, 16, 32, 64}) {
    const AuditResult r =
        audit_algorithm(Algorithm::kBinomialPipeline, n, 64);
    EXPECT_NEAR(r.avg_steady_slack, analysis::average_slack(n), 0.15)
        << "n=" << n;
  }
}

TEST(BinomialPipeline, LinkUsedOneOverLOfSteps) {
  // §4.5 item 2: each directed pair is used on ~1/l of the steps.
  for (std::size_t n : {8, 16, 32}) {
    const std::size_t k = 64;
    const std::size_t l = util::ceil_log2(n);
    const AuditResult r =
        audit_algorithm(Algorithm::kBinomialPipeline, n, k);
    const std::size_t bound = l + k - 1;
    EXPECT_LE(r.max_pair_uses, bound / l + 2) << "n=" << n;
  }
}

TEST(Chain, EveryLinkCarriesEveryBlock) {
  // Contrast for §4.5 item 2: in chain replication every link is traversed
  // by every block, so a slow link gates everything.
  const AuditResult r = audit_algorithm(Algorithm::kChain, 8, 32);
  EXPECT_EQ(r.max_pair_uses, 32u);
}

TEST(Analysis, SlowLinkFractionPaperExample) {
  // T' = T/2, n = 64: l*T'/(T+(l-1)T') = 3/3.5 = 85.7%, which the paper
  // reports (rounded) as 85.6% (§4.5 item 2).
  EXPECT_NEAR(analysis::slow_link_fraction(64, 1.0, 0.5), 0.857, 0.001);
}

TEST(Analysis, SlackApproachesTwo) {
  EXPECT_NEAR(analysis::average_slack(1024), 2.0, 0.02);
  EXPECT_LT(analysis::average_slack(8), 2.0);
}

TEST(Analysis, AlgorithmTimeModelsOrdering) {
  // For large k and moderate n: pipeline < chain < tree < sequential.
  const double bt = 1.0;
  const std::size_t n = 16, k = 256;
  const double seq = analysis::sequential_time(n, k, bt);
  const double chain = analysis::chain_time(n, k, bt);
  const double tree = analysis::binomial_tree_time(n, k, bt);
  const double pipe = analysis::binomial_pipeline_time(n, k, bt);
  EXPECT_LT(pipe, tree);
  EXPECT_LT(tree, seq);
  EXPECT_LE(pipe, chain);
  EXPECT_LT(chain, tree);
}

// ------------------------------------------------------------ MPI baseline --

TEST(MpiBcast, AuditSweep) {
  for (std::size_t n : {2, 3, 4, 5, 8, 9, 15, 16, 17, 32}) {
    for (std::size_t k : {1, 2, 3, 7, 16, 37, 64}) {
      const AuditResult r = audit_schedule(
          [&](std::size_t rank) {
            return std::make_unique<baseline::MpiBcastSchedule>(n, rank);
          },
          n, k);
      EXPECT_TRUE(r.consistent) << "n=" << n << " k=" << k;
      EXPECT_TRUE(r.complete) << "n=" << n << " k=" << k;
    }
  }
}

TEST(MpiBcast, NoSenderHotSpot) {
  // Scatter+allgather spreads the load: the busiest node transmits ~2k
  // blocks, while sequential concentrates (n-1)*k at the root — the NIC
  // hot spot §4.3 calls out.
  const std::size_t n = 16, k = 64;
  auto max_tx = [&](auto make) {
    std::size_t busiest = 0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      auto s = make(rank);
      std::size_t tx = 0;
      for (std::size_t j = 0; j < s->num_steps(k); ++j)
        tx += s->sends_at(k, j).size();
      busiest = std::max(busiest, tx);
    }
    return busiest;
  };
  const std::size_t mpi_busiest = max_tx([&](std::size_t rank) {
    return std::make_unique<baseline::MpiBcastSchedule>(n, rank);
  });
  const std::size_t seq_busiest = max_tx([&](std::size_t rank) {
    return make_schedule(Algorithm::kSequential, n, rank);
  });
  EXPECT_EQ(seq_busiest, (n - 1) * k);
  EXPECT_LT(mpi_busiest, seq_busiest / 4);
}

// ---------------------------------------------------------------- hybrid --

TEST(Hybrid, CompleteAcrossRackShapes) {
  struct Shape {
    std::size_t n;
    std::size_t per_rack;
  };
  for (Shape shape : {Shape{8, 4}, Shape{12, 4}, Shape{16, 4}, Shape{15, 5},
                      Shape{32, 8}, Shape{9, 3}}) {
    std::vector<std::uint32_t> racks(shape.n);
    for (std::size_t i = 0; i < shape.n; ++i)
      racks[i] = static_cast<std::uint32_t>(i / shape.per_rack);
    for (std::size_t k : {1, 4, 16}) {
      const AuditResult r = audit_schedule(
          [&](std::size_t rank) {
            return std::make_unique<HybridSchedule>(shape.n, rank, racks);
          },
          shape.n, k);
      EXPECT_TRUE(r.consistent)
          << shape.n << "/" << shape.per_rack << " k=" << k;
      EXPECT_TRUE(r.complete)
          << shape.n << "/" << shape.per_rack << " k=" << k;
    }
  }
}

TEST(Hybrid, LeadersUseInterRackPipeline) {
  std::vector<std::uint32_t> racks{0, 0, 0, 0, 1, 1, 1, 1};
  HybridSchedule leader(8, 0, racks);
  EXPECT_TRUE(leader.is_leader());
  HybridSchedule member(8, 2, racks);
  EXPECT_FALSE(member.is_leader());
  // The sender's first transfer goes to the other rack's leader (rank 4).
  const auto sends = leader.sends_at(4, 0);
  ASSERT_FALSE(sends.empty());
  EXPECT_EQ(sends.front().peer, 4u);
}

TEST(Hybrid, CrossRackTrafficReduced) {
  // Count inter-rack transfers: hybrid should cross the TOR ~once per
  // block per rack; a flat pipeline crosses far more often.
  const std::size_t n = 16, per_rack = 4, k = 32;
  std::vector<std::uint32_t> racks(n);
  for (std::size_t i = 0; i < n; ++i)
    racks[i] = static_cast<std::uint32_t>(i / per_rack);

  auto count_cross = [&](const ScheduleFactory& make) {
    std::size_t cross = 0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      auto s = make(rank);
      for (std::size_t j = 0; j < s->num_steps(k); ++j) {
        for (const auto& t : s->sends_at(k, j))
          if (racks[rank] != racks[t.peer]) ++cross;
      }
    }
    return cross;
  };

  const std::size_t hybrid_cross = count_cross([&](std::size_t rank) {
    return std::make_unique<HybridSchedule>(n, rank, racks);
  });
  const std::size_t flat_cross = count_cross([&](std::size_t rank) {
    return std::make_unique<BinomialPipelineSchedule>(n, rank);
  });
  EXPECT_LT(hybrid_cross * 2, flat_cross);
}

// ------------------------------------------------------ misc unit checks --

TEST(Schedule, FactoryNames) {
  EXPECT_EQ(make_schedule(Algorithm::kSequential, 4, 0)->name(),
            "sequential");
  EXPECT_EQ(make_schedule(Algorithm::kChain, 4, 1)->name(), "chain");
  EXPECT_EQ(make_schedule(Algorithm::kBinomialTree, 4, 2)->name(),
            "binomial_tree");
  EXPECT_EQ(make_schedule(Algorithm::kBinomialPipeline, 4, 3)->name(),
            "binomial_pipeline");
}

TEST(Schedule, PaperFigure3Steps) {
  // The worked example of Fig 3 (middle): n=8, k=3. Step 0: 0 sends block
  // 0 to 1. Step 1: 0 sends block 1 to 2 while 1 relays block 0 to 3.
  BinomialPipelineSchedule s0(8, 0), s1(8, 1), s2(8, 2), s3(8, 3);
  auto t0 = s0.sends_at(3, 0);
  ASSERT_EQ(t0.size(), 1u);
  EXPECT_EQ(t0[0], (Transfer{1, 0}));

  auto t1_root = s0.sends_at(3, 1);
  ASSERT_EQ(t1_root.size(), 1u);
  EXPECT_EQ(t1_root[0], (Transfer{2, 1}));
  auto t1_relay = s1.sends_at(3, 1);
  ASSERT_EQ(t1_relay.size(), 1u);
  EXPECT_EQ(t1_relay[0], (Transfer{3, 0}));

  // Step 2: 0->4 (block 2), 1->5 (block 0), 2->6 (block 1), 3->7 (block 0).
  EXPECT_EQ(s0.sends_at(3, 2)[0], (Transfer{4, 2}));
  EXPECT_EQ(s1.sends_at(3, 2)[0], (Transfer{5, 0}));
  EXPECT_EQ(s2.sends_at(3, 2)[0], (Transfer{6, 1}));
  EXPECT_EQ(s3.sends_at(3, 2)[0], (Transfer{7, 0}));
}

TEST(Schedule, LargeScaleSpotCheck) {
  const AuditResult r =
      audit_algorithm(Algorithm::kBinomialPipeline, 512, 64);
  EXPECT_TRUE(r.consistent);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.steps_used, 9u + 64u - 1u);

  const AuditResult odd =
      audit_algorithm(Algorithm::kBinomialPipeline, 300, 32);
  EXPECT_TRUE(odd.consistent);
  EXPECT_TRUE(odd.complete);
}

TEST(Schedule, SkewIsLowForPipeline) {
  // Binomial pipeline receivers finish nearly simultaneously (§5.2.2);
  // sequential finishes them one after another.
  const std::size_t n = 16, k = 32;
  const AuditResult pipe =
      audit_algorithm(Algorithm::kBinomialPipeline, n, k);
  const AuditResult seq = audit_algorithm(Algorithm::kSequential, n, k);
  auto skew = [](const AuditResult& r) {
    std::size_t lo = SIZE_MAX, hi = 0;
    for (std::size_t i = 1; i < r.completion_step.size(); ++i) {
      lo = std::min(lo, r.completion_step[i]);
      hi = std::max(hi, r.completion_step[i]);
    }
    return hi - lo;
  };
  EXPECT_LE(skew(pipe), util::ceil_log2(n));
  EXPECT_EQ(skew(seq), (n - 2) * k);
}

}  // namespace
}  // namespace rdmc::sched
