#include <gtest/gtest.h>

#include "sim/cluster_profiles.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rdmc::sim {
namespace {

// ----------------------------------------------------------- event queue --

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, [&, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, Cancel) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // double-cancel is a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelHead) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

// ------------------------------------------------------------- simulator --

TEST(Simulator, ClockAdvances) {
  Simulator sim;
  double seen = -1;
  sim.after(1.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.after(1.0, [&] {
    times.push_back(sim.now());
    sim.after(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, RunUntil) {
  Simulator sim;
  int fired = 0;
  sim.after(1.0, [&] { ++fired; });
  sim.after(5.0, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_FALSE(sim.run_until(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsProcessedCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

// -------------------------------------------------------------- topology --

TEST(Topology, FlatRack) {
  Topology topo(TopologyConfig{.num_nodes = 16, .nic_gbps = 100.0});
  EXPECT_EQ(topo.num_racks(), 1u);
  EXPECT_TRUE(topo.same_rack(0, 15));
  EXPECT_DOUBLE_EQ(topo.nic_Bps(), 100e9 / 8.0);
}

TEST(Topology, Racks) {
  TopologyConfig cfg;
  cfg.num_nodes = 40;
  cfg.nodes_per_rack = 16;
  cfg.rack_uplink_gbps = 100.0;
  Topology topo(cfg);
  EXPECT_EQ(topo.num_racks(), 3u);
  EXPECT_EQ(topo.rack_of(0), 0u);
  EXPECT_EQ(topo.rack_of(15), 0u);
  EXPECT_EQ(topo.rack_of(16), 1u);
  EXPECT_EQ(topo.rack_of(39), 2u);
  EXPECT_TRUE(topo.same_rack(0, 15));
  EXPECT_FALSE(topo.same_rack(15, 16));
}

TEST(Topology, InterRackLatency) {
  TopologyConfig cfg;
  cfg.num_nodes = 32;
  cfg.nodes_per_rack = 16;
  cfg.base_latency_s = 1e-6;
  cfg.inter_rack_extra_latency_s = 2e-6;
  Topology topo(cfg);
  EXPECT_DOUBLE_EQ(topo.latency(0, 1), 1e-6);
  EXPECT_DOUBLE_EQ(topo.latency(0, 31), 3e-6);
}

TEST(Topology, PairCapOverride) {
  Topology topo(TopologyConfig{.num_nodes = 4, .nic_gbps = 100.0});
  EXPECT_FALSE(topo.pair_cap_Bps(0, 1).has_value());
  topo.set_pair_cap(0, 1, 50.0);
  ASSERT_TRUE(topo.pair_cap_Bps(0, 1).has_value());
  EXPECT_DOUBLE_EQ(*topo.pair_cap_Bps(0, 1), 50e9 / 8.0);
  EXPECT_FALSE(topo.pair_cap_Bps(1, 0).has_value());  // directional
}

TEST(Topology, SlowNode) {
  Topology topo(TopologyConfig{.num_nodes = 4, .nic_gbps = 100.0});
  topo.set_node_nic(2, 40.0);
  EXPECT_DOUBLE_EQ(topo.node_tx_Bps(2), 40e9 / 8.0);
  EXPECT_DOUBLE_EQ(topo.node_tx_Bps(1), 100e9 / 8.0);
}

// ------------------------------------------------------- cluster profiles --

TEST(ClusterProfiles, Presets) {
  const auto fractus = fractus_profile();
  EXPECT_EQ(fractus.topology.num_nodes, 16u);
  EXPECT_DOUBLE_EQ(fractus.topology.nic_gbps, 100.0);
  EXPECT_EQ(fractus.topology.nodes_per_rack, 0u);

  const auto sierra = sierra_profile(512);
  EXPECT_EQ(sierra.topology.num_nodes, 512u);
  EXPECT_DOUBLE_EQ(sierra.topology.nic_gbps, 40.0);

  const auto apt = apt_profile(64);
  EXPECT_EQ(apt.topology.nodes_per_rack, 16u);
  EXPECT_GT(apt.topology.rack_uplink_gbps, 0.0);
  // The TOR is oversubscribed: uplink < sum of member NIC rates.
  EXPECT_LT(apt.topology.rack_uplink_gbps,
            apt.topology.nic_gbps * 16);
}

}  // namespace
}  // namespace rdmc::sim
