// SimFabric semantics and timing: same contract as MemFabric, plus
// virtual-time behaviour (flow-paced transfers, completion modes, software
// cost accounting, preemption injection).
#include <gtest/gtest.h>

#include <cstring>

#include "fabric/sim_fabric.hpp"

namespace rdmc::fabric {
namespace {

constexpr double kGbps = 1e9 / 8.0;

struct Fixture {
  explicit Fixture(std::size_t nodes, double gbps = 100.0,
                   SimFabric::Options opts = {})
      : topo(sim::TopologyConfig{.num_nodes = nodes, .nic_gbps = gbps}),
        fabric(sim, topo, opts) {}
  sim::Simulator sim;
  sim::Topology topo;
  SimFabric fabric;
};

TEST(SimFabric, DataIntegrity) {
  Fixture f(2);
  std::vector<Completion> r1;
  f.fabric.endpoint(1).set_completion_handler(
      [&](const Completion& c) { r1.push_back(c); });
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  QueuePair* qp1 = f.fabric.connect(1, 0, 0);

  std::vector<std::byte> src(4096), dst(4096);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i * 13);
  qp1->post_recv(MemoryView{dst.data(), dst.size()}, 5);
  qp0->post_send(MemoryView{src.data(), src.size()}, 6, 321);
  f.sim.run();
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].immediate, 321u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(SimFabric, TransferTimeMatchesLineRate) {
  Fixture f(2, 100.0);
  double recv_at = -1;
  f.fabric.endpoint(1).set_completion_handler(
      [&](const Completion&) { recv_at = f.sim.now(); });
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  QueuePair* qp1 = f.fabric.connect(1, 0, 0);
  const double bytes = 100.0 * kGbps;  // 100 Gb of payload => 1 s at line rate
  qp1->post_recv(MemoryView{nullptr, static_cast<std::size_t>(bytes)}, 1);
  qp0->post_send(MemoryView{nullptr, static_cast<std::size_t>(bytes)}, 2, 0);
  f.sim.run();
  EXPECT_NEAR(recv_at, 1.0, 1e-3);  // + latency + software costs
}

TEST(SimFabric, FifoSerializesPerQp) {
  // Two 1-second sends on one QP take ~2 seconds end to end.
  Fixture f(2, 100.0);
  std::vector<double> recv_times;
  f.fabric.endpoint(1).set_completion_handler(
      [&](const Completion&) { recv_times.push_back(f.sim.now()); });
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  QueuePair* qp1 = f.fabric.connect(1, 0, 0);
  const auto bytes = static_cast<std::size_t>(100.0 * kGbps);  // 1 s each
  qp1->post_recv(MemoryView{nullptr, bytes}, 1);
  qp1->post_recv(MemoryView{nullptr, bytes}, 2);
  qp0->post_send(MemoryView{nullptr, bytes}, 3, 0);
  qp0->post_send(MemoryView{nullptr, bytes}, 4, 0);
  f.sim.run();
  ASSERT_EQ(recv_times.size(), 2u);
  EXPECT_NEAR(recv_times[0], 1.0, 1e-3);
  EXPECT_NEAR(recv_times[1], 2.0, 1e-3);
}

TEST(SimFabric, ParallelQpsShareBandwidth) {
  // Sends to two different peers share the tx port fairly.
  Fixture f(3, 100.0);
  std::vector<double> done(3, -1);
  for (NodeId n = 1; n <= 2; ++n) {
    f.fabric.endpoint(n).set_completion_handler(
        [&, n](const Completion&) { done[n] = f.sim.now(); });
  }
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  const auto bytes = static_cast<std::size_t>(50.0 * kGbps);  // 0.5 s alone
  for (NodeId n = 1; n <= 2; ++n) {
    QueuePair* qpn = f.fabric.connect(n, 0, 0);
    qpn->post_recv(MemoryView{nullptr, bytes}, 1);
    QueuePair* qp0 = f.fabric.connect(0, n, 0);
    qp0->post_send(MemoryView{nullptr, bytes}, 2, 0);
  }
  f.sim.run();
  // Shared port: both take ~1 s instead of 0.5 s.
  EXPECT_NEAR(done[1], 1.0, 1e-2);
  EXPECT_NEAR(done[2], 1.0, 1e-2);
}

TEST(SimFabric, SendBlocksUntilRecvPosted) {
  Fixture f(2);
  double recv_at = -1;
  f.fabric.endpoint(1).set_completion_handler(
      [&](const Completion&) { recv_at = f.sim.now(); });
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  QueuePair* qp1 = f.fabric.connect(1, 0, 0);
  qp0->post_send(MemoryView{nullptr, 1000}, 1, 0);
  // Post the receive only at t = 0.5 s.
  f.sim.after(0.5, [&] { qp1->post_recv(MemoryView{nullptr, 1000}, 2); });
  f.sim.run();
  EXPECT_GE(recv_at, 0.5);
}

TEST(SimFabric, InterruptModeAddsLatency) {
  auto run_mode = [](CompletionMode mode) {
    SimFabric::Options opts;
    opts.default_mode = mode;
    // Make the hybrid window tiny so hybrid==interrupt is distinguishable.
    Fixture f(2, 100.0, opts);
    double recv_at = -1;
    f.fabric.endpoint(1).set_completion_handler(
        [&](const Completion&) { recv_at = f.sim.now(); });
    f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
    QueuePair* qp0 = f.fabric.connect(0, 1, 0);
    QueuePair* qp1 = f.fabric.connect(1, 0, 0);
    qp1->post_recv(MemoryView{nullptr, 1000}, 1);
    qp0->post_send(MemoryView{nullptr, 1000}, 2, 0);
    f.sim.run();
    return recv_at;
  };
  const double polling = run_mode(CompletionMode::kPolling);
  const double interrupt = run_mode(CompletionMode::kInterrupt);
  EXPECT_GT(interrupt, polling);
  EXPECT_NEAR(interrupt - polling, SimFabric::Options{}.costs.interrupt_wakeup_s,
              1e-6);
}

TEST(SimFabric, CrossChannelRemovesSoftwareCosts) {
  SimFabric::Options opts;
  opts.cross_channel = true;
  Fixture f(2, 100.0, opts);
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  f.fabric.endpoint(1).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  QueuePair* qp1 = f.fabric.connect(1, 0, 0);
  qp1->post_recv(MemoryView{nullptr, 1000}, 1);
  qp0->post_send(MemoryView{nullptr, 1000}, 2, 0);
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.fabric.cpu_busy_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(f.fabric.cpu_busy_seconds(1), 0.0);
}

TEST(SimFabric, CpuBusyAccounted) {
  Fixture f(2);
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  f.fabric.endpoint(1).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  QueuePair* qp1 = f.fabric.connect(1, 0, 0);
  qp1->post_recv(MemoryView{nullptr, 100}, 1);
  qp0->post_send(MemoryView{nullptr, 100}, 2, 0);
  f.sim.run();
  EXPECT_GT(f.fabric.cpu_busy_seconds(0), 0.0);
  EXPECT_GT(f.fabric.cpu_busy_seconds(1), 0.0);
}

TEST(SimFabric, WriteImmDelivered) {
  Fixture f(2);
  std::vector<Completion> r1;
  f.fabric.endpoint(1).set_completion_handler(
      [&](const Completion& c) { r1.push_back(c); });
  f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  qp0->post_write_imm(777, 1);
  f.sim.run();
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].opcode, WcOpcode::kRecvWriteImm);
  EXPECT_EQ(r1[0].immediate, 777u);
}

TEST(SimFabric, BreakAbortsInFlightFlow) {
  Fixture f(2);
  std::vector<Completion> r0, r1;
  f.fabric.endpoint(0).set_completion_handler(
      [&](const Completion& c) { r0.push_back(c); });
  f.fabric.endpoint(1).set_completion_handler(
      [&](const Completion& c) { r1.push_back(c); });
  QueuePair* qp0 = f.fabric.connect(0, 1, 0);
  QueuePair* qp1 = f.fabric.connect(1, 0, 0);
  const auto bytes = static_cast<std::size_t>(100.0 * kGbps);  // 1 s
  qp1->post_recv(MemoryView{nullptr, bytes}, 1);
  qp0->post_send(MemoryView{nullptr, bytes}, 2, 0);
  f.sim.after(0.1, [&] { f.fabric.break_link(0, 1); });
  f.sim.run();
  EXPECT_LT(f.sim.now(), 0.5);  // flow aborted, not completed
  bool disc0 = false, disc1 = false;
  for (const auto& c : r0) disc0 |= c.opcode == WcOpcode::kDisconnect;
  for (const auto& c : r1) disc1 |= c.opcode == WcOpcode::kDisconnect;
  EXPECT_TRUE(disc0);
  EXPECT_TRUE(disc1);
  EXPECT_EQ(qp0->post_send(MemoryView{nullptr, 10}, 9, 0), PostResult::kQpBroken);
}

TEST(SimFabric, OobDelivery) {
  Fixture f(3);
  std::vector<NodeId> froms;
  f.fabric.endpoint(2).set_oob_handler(
      [&](NodeId from, std::span<const std::byte>) {
        froms.push_back(from);
      });
  f.fabric.endpoint(0).send_oob(2, std::vector<std::byte>(4));
  f.fabric.endpoint(1).send_oob(2, std::vector<std::byte>(4));
  f.sim.run();
  ASSERT_EQ(froms.size(), 2u);
  EXPECT_GT(f.sim.now(), 0.0);  // OOB has latency
}

TEST(SimFabric, PreemptionInjectsDelay) {
  SimFabric::Options heavy;
  heavy.preemption.probability = 1.0;  // every op preempted
  heavy.preemption.mean_duration_s = 100e-6;
  SimFabric::Options none;
  none.preemption.probability = 0.0;

  auto run = [](SimFabric::Options opts) {
    Fixture f(2, 100.0, opts);
    double recv_at = -1;
    f.fabric.endpoint(1).set_completion_handler(
        [&](const Completion&) { recv_at = f.sim.now(); });
    f.fabric.endpoint(0).set_completion_handler([](const Completion&) {});
    QueuePair* qp0 = f.fabric.connect(0, 1, 0);
    QueuePair* qp1 = f.fabric.connect(1, 0, 0);
    qp1->post_recv(MemoryView{nullptr, 1000}, 1);
    qp0->post_send(MemoryView{nullptr, 1000}, 2, 0);
    f.sim.run();
    return recv_at;
  };
  EXPECT_GT(run(heavy), run(none) + 20e-6);
}

}  // namespace
}  // namespace rdmc::fabric
