// Stress and property tests for the incremental simulator core: flow aborts
// mid-transfer, EventQueue cancellation under churn, and randomized
// equivalence of the incremental reallocation against a from-scratch
// water-filling.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rdmc::sim {
namespace {

constexpr double kGbps = 1e9 / 8.0;  // bytes/sec per Gb/s

struct Fixture {
  explicit Fixture(TopologyConfig cfg) : topo(cfg), net(sim, topo) {
    net.set_cross_check(true);
  }
  Simulator sim;
  Topology topo;
  FlowNetwork net;
};

// ---------------------------------------------------------- abort_flow --

TEST(AbortFlow, MidFlightAbortRedistributesBandwidth) {
  // Two flows share the tx port at 50 Gb/s each. Aborting one at t=0.5
  // doubles the survivor's rate: it has moved 25 Gb by then and the
  // remaining 75 Gb go at 100 Gb/s, finishing at t = 0.5 + 0.75.
  Fixture f(TopologyConfig{.num_nodes = 3, .nic_gbps = 100.0});
  double t1 = -1, t2 = -1;
  const FlowId a = f.net.start_flow(0, 1, 100.0 * kGbps,
                                    [&](SimTime t) { t1 = t; });
  f.net.start_flow(0, 2, 100.0 * kGbps, [&](SimTime t) { t2 = t; });
  f.sim.at(0.5, [&] { f.net.abort_flow(a); });
  f.sim.run();
  EXPECT_EQ(t1, -1) << "aborted flow's callback must never fire";
  EXPECT_NEAR(t2, 1.25, 1e-9);
  EXPECT_EQ(f.net.active_flows(), 0u);
  EXPECT_EQ(f.net.counters().flow_aborts, 1u);
}

TEST(AbortFlow, AbortWithinStartInstant) {
  // Start and abort inside one virtual instant: the flow is never wired
  // into any resource, and the neighbour is unaffected.
  Fixture f(TopologyConfig{.num_nodes = 3, .nic_gbps = 100.0});
  double t2 = -1;
  f.net.start_flow(0, 2, 100.0 * kGbps, [&](SimTime t) { t2 = t; });
  const FlowId a = f.net.start_flow(0, 1, 100.0 * kGbps,
                                    [](SimTime) { FAIL(); });
  f.net.abort_flow(a);
  f.sim.run();
  EXPECT_NEAR(t2, 1.0, 1e-9);
}

TEST(AbortFlow, UnknownAndDoubleAbortAreNoOps) {
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  double t1 = -1;
  const FlowId a = f.net.start_flow(0, 1, 100.0 * kGbps,
                                    [&](SimTime t) { t1 = t; });
  f.net.abort_flow(a + 100);  // never issued
  f.sim.at(0.25, [&] {
    f.net.abort_flow(a);
    f.net.abort_flow(a);  // second abort of the same id
  });
  f.sim.run();
  EXPECT_EQ(t1, -1);
  EXPECT_EQ(f.net.counters().flow_aborts, 1u);
  EXPECT_TRUE(f.net.rates_match_full_recompute());
}

TEST(AbortFlow, ManyInFlightAbortsKeepRatesConsistent) {
  // A fan-in of 16 senders; abort half of them at staggered times while
  // the rest complete. Every reallocation is cross-checked (fixture), and
  // the survivors must finish with all bytes accounted for.
  Fixture f(TopologyConfig{.num_nodes = 17, .nic_gbps = 100.0});
  int completed = 0;
  std::vector<FlowId> ids;
  for (NodeId s = 0; s < 16; ++s) {
    ids.push_back(f.net.start_flow(s, 16, 10.0 * kGbps,
                                   [&](SimTime) { ++completed; }));
  }
  for (int i = 0; i < 8; ++i) {
    f.sim.at(0.05 + 0.01 * i, [&f, &ids, i] { f.net.abort_flow(ids[2 * i]); });
  }
  f.sim.run();
  EXPECT_EQ(completed, 8);
  EXPECT_EQ(f.net.counters().flow_aborts, 8u);
  EXPECT_DOUBLE_EQ(f.net.bytes_completed(), 8 * 10.0 * kGbps);
}

// ------------------------------------------------- EventQueue::cancel --

TEST(EventQueueCancel, StressAgainstReferenceModel) {
  // Random schedule/cancel/pop churn, mirrored into a reference ordered
  // map. The queue must fire exactly the never-cancelled events, in
  // (time, insertion-sequence) order, and cancel() must report precisely
  // whether the id was still pending.
  std::mt19937 rng(0xC0FFEE);
  EventQueue queue;
  // (time, insertion seq) -> event id; mirrors the queue's live set.
  std::map<std::pair<SimTime, std::uint64_t>, EventId> model;
  std::uint64_t seq = 0;
  SimTime now = 0.0;
  std::vector<EventId> history;  // every id ever issued (mostly stale)
  std::uniform_real_distribution<double> dt(0.0, 10.0);

  int fired_payload = -1;
  for (int op = 0; op < 20000; ++op) {
    const int pick = static_cast<int>(rng() % 10);
    if (pick < 5 || model.empty()) {
      const SimTime when = now + dt(rng);
      const EventId id = queue.schedule(when, [&fired_payload, op] {
        fired_payload = op;
      });
      model.emplace(std::make_pair(when, seq++), id);
      history.push_back(id);
    } else if (pick < 8) {
      // Cancel: half the time a live id, half the time a stale one.
      if (rng() % 2 == 0) {
        auto it = model.begin();
        std::advance(it, rng() % model.size());
        EXPECT_TRUE(queue.cancel(it->second));
        EXPECT_FALSE(queue.cancel(it->second)) << "double cancel must fail";
        model.erase(it);
      } else {
        const EventId stale = history[rng() % history.size()];
        bool live = false;
        for (const auto& [key, id] : model) live |= (id == stale);
        EXPECT_EQ(queue.cancel(stale), live);
        if (live) {
          for (auto it = model.begin(); it != model.end(); ++it) {
            if (it->second == stale) {
              model.erase(it);
              break;
            }
          }
        }
      }
    } else {
      auto [when, fn] = queue.pop();
      ASSERT_FALSE(model.empty());
      EXPECT_EQ(when, model.begin()->first.first);
      fired_payload = -1;
      fn();
      EXPECT_NE(fired_payload, -1) << "popped event must carry its closure";
      model.erase(model.begin());
      EXPECT_GE(when, now);
      now = when;
    }
    ASSERT_EQ(queue.size(), model.size());
    EXPECT_EQ(queue.empty(), model.empty());
    if (!model.empty()) {
      EXPECT_EQ(queue.next_time(), model.begin()->first.first);
    }
  }
  // Drain what's left; order must match the model exactly.
  while (!model.empty()) {
    auto [when, fn] = queue.pop();
    EXPECT_EQ(when, model.begin()->first.first);
    model.erase(model.begin());
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueCancel, SlotReuseNeverHonoursStaleIds) {
  // Churn a single-slot queue: each generation's id must die with it.
  EventQueue queue;
  std::vector<EventId> stale;
  for (int i = 0; i < 1000; ++i) {
    const EventId id = queue.schedule(static_cast<double>(i), [] {});
    for (const EventId old : stale) EXPECT_FALSE(queue.cancel(old));
    if (i % 2 == 0) {
      EXPECT_TRUE(queue.cancel(id));
    } else {
      (void)queue.pop();
    }
    if (stale.size() < 16) stale.push_back(id);
  }
  EXPECT_TRUE(queue.empty());
}

// ------------------------------------ incremental == full water-filling --

TEST(IncrementalReallocation, RandomizedEquivalenceWithFullRecompute) {
  // Random topology (racks, uplink caps, slow pair links, slow nodes) and
  // a random start/abort/complete schedule. Cross-check mode already
  // validates every single reallocation internally; on top of that the
  // test samples rates_match_full_recompute(1e-9) at random instants.
  std::mt19937 rng(2024);
  for (int round = 0; round < 6; ++round) {
    TopologyConfig cfg;
    cfg.num_nodes = 10 + rng() % 6;
    cfg.nic_gbps = 100.0;
    if (rng() % 2 == 0) {
      cfg.nodes_per_rack = 4;
      cfg.rack_uplink_gbps = 100.0 + static_cast<double>(rng() % 200);
    }
    Fixture f(cfg);
    const auto n = static_cast<NodeId>(cfg.num_nodes);
    // A few slow directed links, established before any flow starts.
    for (int i = 0; i < 3; ++i) {
      const NodeId s = rng() % n;
      const NodeId d = (s + 1 + rng() % (n - 1)) % n;
      f.topo.set_pair_cap(s, d, 5.0 + static_cast<double>(rng() % 40));
    }

    std::vector<FlowId> live;
    std::uniform_real_distribution<double> when(0.0, 0.5);
    std::uniform_real_distribution<double> size(0.05, 2.0);
    for (int i = 0; i < 120; ++i) {
      const double t = when(rng);
      const int action = static_cast<int>(rng() % 10);
      if (action < 6) {
        const NodeId s = rng() % n;
        const NodeId d = (s + 1 + rng() % (n - 1)) % n;
        const double bytes = size(rng) * kGbps;
        f.sim.at(t, [&f, &live, s, d, bytes] {
          live.push_back(f.net.start_flow(s, d, bytes, nullptr));
        });
      } else if (action < 8) {
        f.sim.at(t, [&f, &live, &rng] {
          if (live.empty()) return;
          const std::size_t k = rng() % live.size();
          f.net.abort_flow(live[k]);  // may already be complete: no-op
          live.erase(live.begin() + k);
        });
      } else if (action == 8) {
        // Mutate a node's NIC mid-run: exercises the topology-version
        // rebuild-everything path.
        const NodeId slow = rng() % n;
        const double gbps = 25.0 + static_cast<double>(rng() % 75);
        f.sim.at(t, [&f, slow, gbps] {
          f.topo.set_node_nic(slow, gbps);
          f.net.topology_changed();
        });
      } else {
        f.sim.at(t, [&f] {
          EXPECT_TRUE(f.net.rates_match_full_recompute(1e-9));
        });
      }
    }
    f.sim.run();
    EXPECT_EQ(f.net.active_flows(), 0u);
    EXPECT_TRUE(f.net.rates_match_full_recompute(1e-9));
    EXPECT_GT(f.net.counters().cross_checks, 0u);
  }
}

TEST(IncrementalReallocation, PairCapAppearsAfterFlowsStarted) {
  // Capacity mutation after flows are established must invalidate the
  // cached membership (the flow gains a new resource), not just rates.
  Fixture f(TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  double t1 = -1;
  f.net.start_flow(0, 1, 50.0 * kGbps, [&](SimTime t) { t1 = t; });
  f.sim.at(0.25, [&] {
    f.topo.set_pair_cap(0, 1, 25.0);
    f.net.topology_changed();
  });
  f.sim.run();
  // 25 Gb at 100 Gb/s until t=0.25, then the remaining 25 Gb at 25 Gb/s.
  EXPECT_NEAR(t1, 0.25 + 25.0 / 25.0, 1e-9);
}

}  // namespace
}  // namespace rdmc::sim
