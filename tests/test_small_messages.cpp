// One-sided window writes and the §4.6 small-message protocol.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "core/small_group.hpp"
#include "fabric/mem_fabric.hpp"
#include "fabric/sim_fabric.hpp"
#include "util/random.hpp"

namespace rdmc {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------- fabric window writes --

TEST(WindowWrite, MemFabricPlacesBytes) {
  std::mutex m;
  std::condition_variable cv;
  std::vector<fabric::Completion> at_target;
  std::vector<std::byte> window(256, std::byte{0});
  fabric::MemFabric fabric(2);
  fabric.endpoint(1).set_completion_handler(
      [&](const fabric::Completion& c) {
        std::lock_guard lock(m);
        at_target.push_back(c);
        cv.notify_all();
      });
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});

  fabric.endpoint(1).register_window(
      9, fabric::MemoryView{window.data(), window.size()});
  fabric::QueuePair* qp = fabric.connect(0, 1, 9);

  std::vector<std::byte> payload(32, std::byte{0xAB});
  ASSERT_TRUE(ok(qp->post_window_write(
      9, 64, fabric::MemoryView{payload.data(), payload.size()}, 777, 5)));
  {
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return !at_target.empty(); }));
  }
  EXPECT_EQ(at_target[0].opcode, fabric::WcOpcode::kRecvWindowWrite);
  EXPECT_EQ(at_target[0].immediate, 777u);
  EXPECT_EQ(at_target[0].byte_len, 32u);
  EXPECT_EQ(at_target[0].wr_id, 64u);  // offset carried to the target
  EXPECT_EQ(window[64], std::byte{0xAB});
  EXPECT_EQ(window[95], std::byte{0xAB});
  EXPECT_EQ(window[63], std::byte{0});
  EXPECT_EQ(window[96], std::byte{0});
}

TEST(WindowWrite, OutOfBoundsBreaksQp) {
  std::mutex m;
  std::condition_variable cv;
  bool disconnected = false;
  std::vector<std::byte> window(64);
  fabric::MemFabric fabric(2);
  fabric.endpoint(0).set_completion_handler(
      [&](const fabric::Completion& c) {
        if (c.opcode == fabric::WcOpcode::kDisconnect) {
          std::lock_guard lock(m);
          disconnected = true;
          cv.notify_all();
        }
      });
  fabric.endpoint(1).set_completion_handler([](const fabric::Completion&) {});
  fabric.endpoint(1).register_window(
      1, fabric::MemoryView{window.data(), window.size()});
  fabric::QueuePair* qp = fabric.connect(0, 1, 1);
  std::vector<std::byte> payload(32);
  ASSERT_TRUE(ok(qp->post_window_write(
      1, 48, fabric::MemoryView{payload.data(), payload.size()}, 0, 1)));
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return disconnected; }));
  EXPECT_TRUE(qp->broken());
}

TEST(WindowWrite, FifoWithTwoSidedSends) {
  // A window write posted after a send must not overtake it.
  std::mutex m;
  std::condition_variable cv;
  std::vector<fabric::WcOpcode> order;
  std::vector<std::byte> window(64);
  fabric::MemFabric fabric(2);
  fabric.endpoint(1).set_completion_handler(
      [&](const fabric::Completion& c) {
        std::lock_guard lock(m);
        order.push_back(c.opcode);
        cv.notify_all();
      });
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});
  fabric.endpoint(1).register_window(
      2, fabric::MemoryView{window.data(), window.size()});
  fabric::QueuePair* qp0 = fabric.connect(0, 1, 2);
  fabric::QueuePair* qp1 = fabric.connect(1, 0, 2);

  std::vector<std::byte> data(16);
  // Send first (blocked: no recv posted), then a window write behind it.
  ASSERT_TRUE(ok(qp0->post_send(fabric::MemoryView{data.data(), 16}, 1, 0)));
  ASSERT_TRUE(ok(qp0->post_window_write(
      2, 0, fabric::MemoryView{data.data(), 16}, 0, 2)));
  std::this_thread::sleep_for(20ms);
  {
    std::lock_guard lock(m);
    EXPECT_TRUE(order.empty()) << "window write overtook a blocked send";
  }
  std::vector<std::byte> rbuf(16);
  ASSERT_TRUE(ok(qp1->post_recv(fabric::MemoryView{rbuf.data(), 16}, 3)));
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return order.size() >= 2; }));
  EXPECT_EQ(order[0], fabric::WcOpcode::kRecv);
  EXPECT_EQ(order[1], fabric::WcOpcode::kRecvWindowWrite);
}

TEST(WindowWrite, SimFabricPlacesBytesInVirtualTime) {
  sim::Simulator simulator;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  fabric::SimFabric fabric(simulator, topo, {});
  std::vector<fabric::Completion> at_target;
  fabric.endpoint(1).set_completion_handler(
      [&](const fabric::Completion& c) { at_target.push_back(c); });
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});
  std::vector<std::byte> window(128, std::byte{0});
  fabric.endpoint(1).register_window(
      3, fabric::MemoryView{window.data(), window.size()});
  fabric::QueuePair* qp = fabric.connect(0, 1, 3);
  std::vector<std::byte> payload(64, std::byte{7});
  ASSERT_TRUE(ok(qp->post_window_write(
      3, 32, fabric::MemoryView{payload.data(), payload.size()}, 42, 1)));
  simulator.run();
  ASSERT_EQ(at_target.size(), 1u);
  EXPECT_EQ(at_target[0].opcode, fabric::WcOpcode::kRecvWindowWrite);
  EXPECT_EQ(window[32], std::byte{7});
  EXPECT_GT(simulator.now(), 0.0);  // took wire time
}

// ------------------------------------------------- small-message protocol --

class SmallCluster {
 public:
  explicit SmallCluster(std::size_t n) : fabric_(n), received_(n) {
    for (std::size_t i = 0; i < n; ++i)
      nodes_.push_back(
          std::make_unique<Node>(fabric_, static_cast<NodeId>(i)));
  }
  ~SmallCluster() {
    nodes_.clear();
    fabric_.stop();
  }

  void create_everywhere(GroupId id, std::vector<NodeId> members,
                         SmallGroupOptions options) {
    for (NodeId m : members) {
      ASSERT_TRUE(nodes_[m]->create_small_group(
          id, members, options,
          [this, m](const std::byte* data, std::size_t size) {
            std::lock_guard lock(mutex_);
            received_[m].emplace_back(data, data + size);
            cv_.notify_all();
          },
          [this](std::size_t seq) {
            std::lock_guard lock(mutex_);
            acked_ = std::max(acked_, seq + 1);
            cv_.notify_all();
          },
          [this](GroupId, NodeId) {
            std::lock_guard lock(mutex_);
            ++failures_;
            cv_.notify_all();
          }));
    }
  }

  bool wait_received(NodeId m, std::size_t count) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, 20s,
                        [&] { return received_[m].size() >= count; });
  }
  bool wait_acked(std::size_t count) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, 20s, [&] { return acked_ >= count; });
  }
  bool wait_failures(std::size_t count) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, 20s, [&] { return failures_ >= count; });
  }
  std::vector<std::byte> received(NodeId m, std::size_t i) {
    std::lock_guard lock(mutex_);
    return received_[m][i];
  }

  Node& node(std::size_t i) { return *nodes_[i]; }
  fabric::MemFabric& fabric() { return fabric_; }

 private:
  fabric::MemFabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<std::vector<std::byte>>> received_;
  std::size_t acked_ = 0;
  std::size_t failures_ = 0;
};

std::vector<std::byte> pattern(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::byte> v(size);
  for (auto& b : v) b = static_cast<std::byte>(rng());
  return v;
}

TEST(SmallMessages, DeliversInOrderToAllMembers) {
  SmallCluster cluster(4);
  SmallGroupOptions options;
  options.slot_size = 4096;
  options.ring_depth = 8;
  cluster.create_everywhere(1, {0, 1, 2, 3}, options);

  // More messages than the ring depth: exercises wraparound and credits.
  constexpr std::size_t kCount = 50;
  std::vector<std::vector<std::byte>> payloads;
  for (std::size_t i = 0; i < kCount; ++i)
    payloads.push_back(pattern(100 + i * 7, i));
  std::size_t sent = 0;
  while (sent < kCount) {
    if (cluster.node(0).send_small(1, payloads[sent].data(),
                                   payloads[sent].size())) {
      ++sent;
    } else {
      std::this_thread::sleep_for(1ms);  // backpressure: ring full
    }
  }
  ASSERT_TRUE(cluster.wait_acked(kCount));
  for (NodeId m = 1; m < 4; ++m) {
    ASSERT_TRUE(cluster.wait_received(m, kCount));
    for (std::size_t i = 0; i < kCount; ++i)
      EXPECT_EQ(cluster.received(m, i), payloads[i])
          << "member " << m << " message " << i;
  }
}

TEST(SmallMessages, RejectsOversizeAndNonRoot) {
  SmallCluster cluster(3);
  SmallGroupOptions options;
  options.slot_size = 256;
  cluster.create_everywhere(1, {0, 1, 2}, options);
  std::vector<std::byte> big(257);
  std::vector<std::byte> ok(10);
  EXPECT_FALSE(cluster.node(0).send_small(1, big.data(), big.size()));
  EXPECT_FALSE(cluster.node(1).send_small(1, ok.data(), ok.size()));
  EXPECT_FALSE(cluster.node(0).send_small(99, ok.data(), ok.size()));
}

TEST(SmallMessages, BackpressureWhenRingFull) {
  SmallCluster cluster(2);
  SmallGroupOptions options;
  options.slot_size = 64;
  options.ring_depth = 4;
  cluster.create_everywhere(1, {0, 1}, options);
  std::vector<std::byte> msg(16);
  // Wait out the ring-registration handshake: the first accepted send
  // proves the receiver's window is ready.
  while (!cluster.node(0).send_small(1, msg.data(), msg.size())) {
    std::this_thread::sleep_for(1ms);
  }
  // Ring depth bounds the number of unacknowledged messages; since the
  // receiver acks quickly this can't be asserted deterministically, but at
  // least ring_depth-1 more sends must be accepted from a fresh ring.
  std::size_t accepted = 1;
  for (int burst = 0; burst < 200; ++burst) {
    if (cluster.node(0).send_small(1, msg.data(), msg.size())) ++accepted;
  }
  EXPECT_GE(accepted, options.ring_depth);
  ASSERT_TRUE(cluster.wait_received(1, accepted));
}

TEST(SmallMessages, FailurePropagates) {
  SmallCluster cluster(3);
  cluster.create_everywhere(1, {0, 1, 2}, SmallGroupOptions{});
  cluster.fabric().crash_node(2);
  ASSERT_TRUE(cluster.wait_failures(3));
  std::vector<std::byte> msg(8);
  EXPECT_FALSE(cluster.node(0).send_small(1, msg.data(), msg.size()));
  EXPECT_FALSE(cluster.node(0).destroy_small_group(1));  // unclean
}

TEST(SmallMessages, CoexistsWithRdmcGroup) {
  // The paper's deployments run both: RDMC for bulk, SMC for control.
  SmallCluster cluster(3);
  cluster.create_everywhere(1, {0, 1, 2}, SmallGroupOptions{});

  std::mutex m;
  std::condition_variable cv;
  int bulk_delivered = 0;
  std::vector<std::vector<std::byte>> bufs(3);
  for (NodeId node = 0; node < 3; ++node) {
    ASSERT_TRUE(cluster.node(node).create_group(
        2, {0, 1, 2}, GroupOptions{.block_size = 4096},
        [&bufs, node](std::size_t size) {
          bufs[node].resize(size);
          return fabric::MemoryView{bufs[node].data(), size};
        },
        [&, node](std::byte*, std::size_t) {
          if (node == 0) return;
          std::lock_guard lock(m);
          ++bulk_delivered;
          cv.notify_all();
        }));
  }
  auto bulk = pattern(100000, 1);
  auto small = pattern(200, 2);
  ASSERT_TRUE(cluster.node(0).send(2, bulk.data(), bulk.size()));
  while (!cluster.node(0).send_small(1, small.data(), small.size())) {
    std::this_thread::sleep_for(1ms);
  }
  {
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, 20s, [&] { return bulk_delivered == 2; }));
  }
  ASSERT_TRUE(cluster.wait_received(1, 1));
  ASSERT_TRUE(cluster.wait_received(2, 1));
  EXPECT_EQ(cluster.received(1, 0), small);
  EXPECT_EQ(bufs[1], bulk);
}

TEST(SmallMessages, DestroyCleanAfterSuccess) {
  SmallCluster cluster(2);
  cluster.create_everywhere(1, {0, 1}, SmallGroupOptions{});
  std::vector<std::byte> msg(32, std::byte{1});
  while (!cluster.node(0).send_small(1, msg.data(), msg.size())) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(cluster.wait_received(1, 1));
  ASSERT_TRUE(cluster.wait_acked(1));
  EXPECT_TRUE(cluster.node(0).destroy_small_group(1));
  EXPECT_FALSE(cluster.node(0).destroy_small_group(1));
}

}  // namespace
}  // namespace rdmc
