// Schedule-aware component splitting: peel_and_split detects saturation
// cuts during a fill and splits the component into independent
// sub-components that fill separately. The contract (DESIGN.md
// "Saturation-cut splitting") is that the split changes *nothing* about
// the result: rates and bottleneck assignments are byte-identical to the
// unsplit flat fill, which is itself pinned to the full-recompute oracle
// by set_cross_check. These tests drive randomized churn over an
// oversubscription x fan-out grid with the cut threshold forced low
// (every sizable component is a peel candidate) against a twin network
// with the threshold effectively infinite, and require bit-equal rates at
// every step — plus bit-equal behaviour across fill_jobs counts over the
// split path, since peeled pieces are exactly what the worker pool
// dispatches.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "util/random.hpp"

namespace rdmc {
namespace {

struct Churn {
  sim::TopologyConfig cfg;
  std::size_t fanout = 1;
  std::uint64_t seed = 1;
  std::size_t steps = 300;
  // Probability a destination lands in the source's rack. The peel only
  // runs on uncoupled components (coupled ones belong to the hierarchical
  // solver, whose fills are tolerance- not byte-equal to the flat path),
  // so the churn must grow sizable intra-rack components to exercise it;
  // the inter-rack remainder keeps coupled components in the mix.
  double intra = 0.7;
};

// Drive the same pseudo-random flow churn through every network in `nets`,
// asserting bit-equal rates across all of them after every step. Fan-out
// k starts k flows from one source per arrival, which is what pushes NIC
// tx resources to high degree and creates margin-separated levels (cuts).
void run_churn(const Churn& c, std::vector<sim::FlowNetwork*> nets) {
  const auto n = static_cast<int>(c.cfg.num_nodes);
  util::Rng rng(c.seed);
  std::vector<std::vector<sim::FlowId>> live;  // [flow][net]
  for (std::size_t step = 0; step < c.steps; ++step) {
    if (live.size() < 8 || rng.uniform01() < 0.6) {
      const sim::NodeId src = static_cast<sim::NodeId>(rng.uniform(0, n - 1));
      const int rack_lo = static_cast<int>(src) / 16 * 16;
      for (std::size_t k = 0; k < c.fanout; ++k) {
        sim::NodeId dst =
            rng.uniform01() < c.intra
                ? static_cast<sim::NodeId>(rack_lo + rng.uniform(0, 15))
                : static_cast<sim::NodeId>(rng.uniform(0, n - 1));
        if (dst == src) dst = (dst + 1) % n;
        std::vector<sim::FlowId> ids;
        ids.reserve(nets.size());
        for (sim::FlowNetwork* net : nets)
          ids.push_back(net->start_flow(src, dst, 1e15, [](sim::SimTime) {}));
        live.push_back(std::move(ids));
      }
    } else {
      const std::size_t i = rng.uniform(0, live.size() - 1);
      for (std::size_t w = 0; w < nets.size(); ++w)
        nets[w]->abort_flow(live[i][w]);
      live[i] = live.back();
      live.pop_back();
    }
    for (const auto& ids : live)
      for (std::size_t w = 1; w < nets.size(); ++w)
        ASSERT_EQ(nets[0]->flow_rate(ids[0]), nets[w]->flow_rate(ids[w]))
            << "step " << step << " net " << w;
  }
  for (const auto& ids : live)
    for (std::size_t w = 0; w < nets.size(); ++w)
      nets[w]->abort_flow(ids[w]);
}

// Split vs unsplit vs oracle across the oversubscription x fan-out grid.
// The split network peels at >= 8 flows (everything is a candidate), the
// unsplit network never peels, and both run with cross-checking on, so
// every incremental result — peeled or not — is additionally pinned to
// the flat full-recompute oracle. Rates must be bit-equal throughout.
TEST(SplitFill, ChurnMatchesUnsplitAndOracleAcrossShapes) {
  const double oversubs[] = {1.0, 3.5, 7.0};
  const std::size_t fanouts[] = {1, 4};
  std::uint64_t total_cuts = 0;
  std::uint64_t seed = 11;
  for (const double oversub : oversubs) {
    for (const std::size_t fanout : fanouts) {
      Churn c;
      c.cfg.num_nodes = 48;
      c.cfg.nic_gbps = 56.0;
      c.cfg.nodes_per_rack = 16;
      // 16 nodes/rack at 56 Gb/s behind an uplink of 16*56/oversub.
      c.cfg.rack_uplink_gbps = 16.0 * 56.0 / oversub;
      c.fanout = fanout;
      c.seed = seed++;

      sim::Simulator sim_s, sim_u;
      sim::Topology topo_s(c.cfg), topo_u(c.cfg);
      sim::FlowNetwork net_s(sim_s, topo_s);
      sim::FlowNetwork net_u(sim_u, topo_u);
      net_s.set_cross_check(true);
      net_u.set_cross_check(true);
      net_s.set_cut_min_flows(8);
      net_u.set_cut_min_flows(std::size_t{1} << 30);

      run_churn(c, {&net_s, &net_u});

      // Identical work modulo the peel itself.
      EXPECT_EQ(net_s.counters().reallocations,
                net_u.counters().reallocations);
      EXPECT_EQ(net_u.counters().split_cuts, 0u);
      total_cuts += net_s.counters().split_cuts;
    }
  }
  // The grid must actually exercise the peel; all-zero cuts means the
  // low threshold stopped engaging and the test went vacuous.
  EXPECT_GT(total_cuts, 0u);
}

// fill_jobs 1 vs 8 over the *split* path: peeled pieces are independent
// components and exactly what the parallel dispatch distributes, so the
// byte-identical contract must hold with the peel forced on.
TEST(SplitFill, SplitPathBitEqualAcrossJobCounts) {
  Churn c;
  c.cfg.num_nodes = 64;
  c.cfg.nic_gbps = 56.0;
  c.cfg.nodes_per_rack = 16;
  c.cfg.rack_uplink_gbps = 16.0 * 56.0 / 3.5;
  c.fanout = 4;
  c.seed = 77;
  c.steps = 250;

  sim::Simulator sim1, sim8;
  sim::Topology topo1(c.cfg), topo8(c.cfg);
  sim::FlowNetwork net1(sim1, topo1);
  sim::FlowNetwork net8(sim8, topo8);
  net1.set_fill_jobs(1);
  net8.set_fill_jobs(8);
  net1.set_cut_min_flows(8);
  net8.set_cut_min_flows(8);

  run_churn(c, {&net1, &net8});

  EXPECT_EQ(net1.counters().filling_rounds, net8.counters().filling_rounds);
  EXPECT_EQ(net1.counters().component_fills, net8.counters().component_fills);
  EXPECT_EQ(net1.counters().flows_touched, net8.counters().flows_touched);
  EXPECT_EQ(net1.counters().split_cuts, net8.counters().split_cuts);
  EXPECT_EQ(net1.counters().split_pieces, net8.counters().split_pieces);
  EXPECT_GT(net1.counters().split_cuts, 0u);
}

}  // namespace
}  // namespace rdmc
