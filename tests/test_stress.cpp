// Seeded chaos test: randomized groups, algorithms, block sizes, message
// sizes and interleavings on the threaded fabric, with full byte-level
// verification. Catches races and cross-group interference the structured
// tests don't reach.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>

#include "baselines/mpi_bcast.hpp"
#include "core/rdmc.hpp"
#include "fabric/mem_fabric.hpp"
#include "util/random.hpp"

namespace rdmc {
namespace {

using namespace std::chrono_literals;

struct Scenario {
  std::uint64_t seed;
};

class Chaos : public ::testing::TestWithParam<Scenario> {};

TEST_P(Chaos, RandomizedGroupsDeliverExactly) {
  util::Rng rng(GetParam().seed);
  const std::size_t num_nodes = 3 + rng.uniform(0, 7);  // 3..10
  const std::size_t num_groups = 2 + rng.uniform(0, 4);  // 2..6

  fabric::MemFabric fabric(num_nodes);
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < num_nodes; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  std::mutex m;
  std::condition_variable cv;
  // (group, member) -> received payloads in order.
  std::map<std::pair<GroupId, NodeId>, std::vector<std::vector<std::byte>>>
      got;
  std::size_t total_deliveries = 0;

  struct GroupPlan {
    std::vector<NodeId> members;
    std::vector<std::vector<std::byte>> messages;
  };
  std::map<GroupId, GroupPlan> plans;

  for (GroupId g = 1; g <= static_cast<GroupId>(num_groups); ++g) {
    GroupPlan plan;
    // Random membership (>= 2, random root).
    const std::size_t size = 2 + rng.uniform(0, num_nodes - 2);
    std::vector<NodeId> pool(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i)
      pool[i] = static_cast<NodeId>(i);
    for (std::size_t i = num_nodes - 1; i > 0; --i)
      std::swap(pool[i], pool[rng.uniform(0, i)]);
    plan.members.assign(pool.begin(), pool.begin() + size);

    GroupOptions options;
    options.block_size = std::size_t{1} << rng.uniform(9, 15);  // 512B..32K
    switch (rng.uniform(0, 4)) {
      case 0: options.algorithm = sched::Algorithm::kSequential; break;
      case 1: options.algorithm = sched::Algorithm::kChain; break;
      case 2: options.algorithm = sched::Algorithm::kBinomialTree; break;
      case 3: options.algorithm = sched::Algorithm::kBinomialPipeline; break;
      case 4:
        options.make_schedule = [](std::size_t n, std::size_t rank) {
          return std::make_unique<baseline::MpiBcastSchedule>(n, rank);
        };
        break;
    }
    options.recv_window = 1 + rng.uniform(0, 7);

    const std::size_t num_messages = 1 + rng.uniform(0, 5);
    for (std::size_t i = 0; i < num_messages; ++i) {
      const std::size_t bytes = 1 + rng.uniform(0, 200000);
      std::vector<std::byte> payload(bytes);
      for (auto& b : payload) b = static_cast<std::byte>(rng());
      plan.messages.push_back(std::move(payload));
    }

    for (NodeId member : plan.members) {
      const bool ok = nodes[member]->create_group(
          g, plan.members, options,
          [&, g, member](std::size_t bytes) {
            std::lock_guard lock(m);
            auto& inbox = got[{g, member}];
            inbox.emplace_back(bytes);
            return fabric::MemoryView{inbox.back().data(), bytes};
          },
          [&, g, member](std::byte*, std::size_t) {
            std::lock_guard lock(m);
            ++total_deliveries;
            cv.notify_all();
          });
      ASSERT_TRUE(ok);
    }
    plans.emplace(g, std::move(plan));
  }

  // Interleave sends across groups in random order.
  std::vector<std::pair<GroupId, std::size_t>> sends;
  std::size_t expected_deliveries = 0;
  for (auto& [g, plan] : plans) {
    for (std::size_t i = 0; i < plan.messages.size(); ++i)
      sends.emplace_back(g, i);
    // Root gets a completion per message; receivers deliver per message.
    expected_deliveries += plan.messages.size() * plan.members.size();
  }
  for (std::size_t i = sends.size() - 1; i > 0; --i)
    std::swap(sends[i], sends[rng.uniform(0, i)]);
  // Per-group order must stay FIFO: sort each group's entries by index.
  std::map<GroupId, std::size_t> next_index;
  for (auto& [g, idx] : sends) idx = next_index[g]++;

  for (const auto& [g, idx] : sends) {
    auto& plan = plans.at(g);
    ASSERT_TRUE(nodes[plan.members.front()]->send(
        g, plan.messages[idx].data(), plan.messages[idx].size()));
  }

  {
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, 60s, [&] {
      return total_deliveries >= expected_deliveries;
    })) << "stall: " << total_deliveries << "/" << expected_deliveries;
  }

  // Byte-exact, in-order verification at every receiver of every group.
  std::lock_guard lock(m);
  for (const auto& [g, plan] : plans) {
    for (std::size_t mi = 1; mi < plan.members.size(); ++mi) {
      const NodeId member = plan.members[mi];
      const auto& inbox = got[{g, member}];
      ASSERT_EQ(inbox.size(), plan.messages.size())
          << "group " << g << " member " << member;
      for (std::size_t i = 0; i < inbox.size(); ++i) {
        ASSERT_EQ(inbox[i].size(), plan.messages[i].size());
        EXPECT_EQ(std::memcmp(inbox[i].data(), plan.messages[i].data(),
                              inbox[i].size()),
                  0)
            << "group " << g << " member " << member << " message " << i;
      }
    }
  }
  nodes.clear();
  fabric.stop();
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (std::uint64_t seed = 42; seed < 42 + 24; ++seed) out.push_back({seed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos, ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return "seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace rdmc
