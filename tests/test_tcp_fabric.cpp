// TcpFabric (§5.3 "RDMC on TCP"): the identical RDMC engine over kernel
// TCP sockets on loopback — fabric semantics, then full end-to-end
// multicasts, the small-message protocol and the atomic layer.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "core/group.hpp"
#include "core/rdmc.hpp"
#include "core/small_group.hpp"
#include "derecho_lite/atomic_group.hpp"
#include "fabric/tcp_fabric.hpp"
#include "util/random.hpp"

namespace rdmc {
namespace {

using namespace std::chrono_literals;

std::vector<fabric::TcpAddress> loopback(std::size_t n) {
  return std::vector<fabric::TcpAddress>(n);  // 127.0.0.1, ephemeral ports
}

std::vector<NodeId> all_nodes(std::size_t n) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<NodeId>(i);
  return v;
}

std::vector<std::byte> pattern(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::byte> v(size);
  for (auto& b : v) b = static_cast<std::byte>(rng());
  return v;
}

TEST(TcpFabric, BasicSendRecv) {
  std::mutex m;
  std::condition_variable cv;
  std::vector<fabric::Completion> r1;
  fabric::TcpFabric fabric(loopback(2), all_nodes(2));
  fabric.endpoint(1).set_completion_handler(
      [&](const fabric::Completion& c) {
        std::lock_guard lock(m);
        r1.push_back(c);
        cv.notify_all();
      });
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});

  fabric::QueuePair* qp0 = fabric.connect(0, 1, 3);
  fabric::QueuePair* qp1 = fabric.connect(1, 0, 3);
  auto payload = pattern(5000, 1);
  std::vector<std::byte> dst(5000);
  ASSERT_TRUE(ok(qp1->post_recv(fabric::MemoryView{dst.data(), dst.size()}, 7)));
  ASSERT_TRUE(ok(qp0->post_send(
      fabric::MemoryView{payload.data(), payload.size()}, 8, 1234)));
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return !r1.empty(); }));
  EXPECT_EQ(r1[0].opcode, fabric::WcOpcode::kRecv);
  EXPECT_EQ(r1[0].immediate, 1234u);
  EXPECT_EQ(r1[0].wr_id, 7u);
  EXPECT_EQ(dst, payload);
}

TEST(TcpFabric, EarlySendParksUntilRecvPosted) {
  std::mutex m;
  std::condition_variable cv;
  std::vector<fabric::Completion> r1;
  fabric::TcpFabric fabric(loopback(2), all_nodes(2));
  fabric.endpoint(1).set_completion_handler(
      [&](const fabric::Completion& c) {
        std::lock_guard lock(m);
        r1.push_back(c);
        cv.notify_all();
      });
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});
  fabric::QueuePair* qp0 = fabric.connect(0, 1, 0);
  fabric::QueuePair* qp1 = fabric.connect(1, 0, 0);
  auto payload = pattern(100, 2);
  ASSERT_TRUE(ok(qp0->post_send(
      fabric::MemoryView{payload.data(), payload.size()}, 1, 5)));
  std::this_thread::sleep_for(30ms);
  {
    std::lock_guard lock(m);
    EXPECT_TRUE(r1.empty());
  }
  std::vector<std::byte> dst(100);
  ASSERT_TRUE(ok(qp1->post_recv(fabric::MemoryView{dst.data(), dst.size()}, 2)));
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return !r1.empty(); }));
  EXPECT_EQ(dst, payload);
}

TEST(TcpFabric, WindowWriteAndImm) {
  std::mutex m;
  std::condition_variable cv;
  std::vector<fabric::Completion> r1;
  fabric::TcpFabric fabric(loopback(2), all_nodes(2));
  fabric.endpoint(1).set_completion_handler(
      [&](const fabric::Completion& c) {
        std::lock_guard lock(m);
        r1.push_back(c);
        cv.notify_all();
      });
  fabric.endpoint(0).set_completion_handler([](const fabric::Completion&) {});
  std::vector<std::byte> window(128, std::byte{0});
  fabric.endpoint(1).register_window(
      4, fabric::MemoryView{window.data(), window.size()});
  fabric::QueuePair* qp = fabric.connect(0, 1, 4);
  auto payload = pattern(40, 3);
  ASSERT_TRUE(ok(qp->post_window_write(
      4, 16, fabric::MemoryView{payload.data(), payload.size()}, 9, 1,
      true)));
  ASSERT_TRUE(ok(qp->post_write_imm(31337, 2)));
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return r1.size() >= 2; }));
  EXPECT_EQ(r1[0].opcode, fabric::WcOpcode::kRecvWindowWrite);
  EXPECT_EQ(std::memcmp(window.data() + 16, payload.data(), 40), 0);
  EXPECT_EQ(r1[1].opcode, fabric::WcOpcode::kRecvWriteImm);
  EXPECT_EQ(r1[1].immediate, 31337u);
}

TEST(TcpFabric, BreakLinkNotifiesBothSides) {
  std::mutex m;
  std::condition_variable cv;
  int disconnects = 0;
  fabric::TcpFabric fabric(loopback(2), all_nodes(2));
  for (NodeId n = 0; n < 2; ++n) {
    fabric.endpoint(n).set_completion_handler(
        [&](const fabric::Completion& c) {
          if (c.opcode == fabric::WcOpcode::kDisconnect) {
            std::lock_guard lock(m);
            ++disconnects;
            cv.notify_all();
          }
        });
  }
  fabric::QueuePair* qp0 = fabric.connect(0, 1, 0);
  fabric.connect(1, 0, 0);
  fabric.break_link(0, 1);
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return disconnects >= 2; }));
  EXPECT_TRUE(qp0->broken());
  std::vector<std::byte> b(8);
  EXPECT_EQ(qp0->post_send(fabric::MemoryView{b.data(), 8}, 1, 0), fabric::PostResult::kQpBroken);
}

// ----------------------------------------------- full RDMC over TCP -------

struct TcpCluster {
  explicit TcpCluster(std::size_t n)
      : received(n), fabric(loopback(n), all_nodes(n)) {
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(
          std::make_unique<Node>(fabric, static_cast<NodeId>(i)));
  }
  ~TcpCluster() {
    nodes.clear();
    fabric.stop();  // joins reader threads before `received` dies
  }
  // Declaration order matters: posted receive buffers (in `received`) must
  // outlive the fabric's socket reader threads.
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::vector<std::vector<std::byte>>> received;
  std::size_t delivered = 0;
  std::size_t root_completions = 0;
  fabric::TcpFabric fabric;
  std::vector<std::unique_ptr<Node>> nodes;
};

TEST(TcpRdmc, BinomialPipelineMulticast) {
  constexpr std::size_t kNodes = 5;
  TcpCluster c(kNodes);
  GroupOptions options;
  options.block_size = 16 * 1024;
  for (NodeId node = 0; node < kNodes; ++node) {
    ASSERT_TRUE(c.nodes[node]->create_group(
        1, all_nodes(kNodes), options,
        [&c, node](std::size_t size) {
          c.received[node].emplace_back(size);
          return fabric::MemoryView{c.received[node].back().data(), size};
        },
        [&c, node](std::byte*, std::size_t) {
          std::lock_guard lock(c.m);
          if (node == 0)
            ++c.root_completions;
          else
            ++c.delivered;
          c.cv.notify_all();
        }));
  }
  auto payload = pattern(700 * 1024 + 13, 10);
  ASSERT_TRUE(c.nodes[0]->send(1, payload.data(), payload.size()));
  {
    // The send buffer may only be released after the ROOT's completion
    // callback (the documented contract), so wait for it too.
    std::unique_lock lock(c.m);
    ASSERT_TRUE(c.cv.wait_for(lock, 20s, [&] {
      return c.delivered == kNodes - 1 && c.root_completions == 1;
    }));
  }
  for (NodeId node = 1; node < kNodes; ++node)
    EXPECT_EQ(c.received[node][0], payload) << "node " << node;
}

TEST(TcpRdmc, MessageSequenceAllAlgorithms) {
  for (auto algorithm :
       {sched::Algorithm::kSequential, sched::Algorithm::kChain,
        sched::Algorithm::kBinomialTree,
        sched::Algorithm::kBinomialPipeline}) {
    constexpr std::size_t kNodes = 4;
    TcpCluster c(kNodes);
    GroupOptions options;
    options.algorithm = algorithm;
    options.block_size = 8 * 1024;
    for (NodeId node = 0; node < kNodes; ++node) {
      ASSERT_TRUE(c.nodes[node]->create_group(
          1, all_nodes(kNodes), options,
          [&c, node](std::size_t size) {
            c.received[node].emplace_back(size);
            return fabric::MemoryView{c.received[node].back().data(), size};
          },
          [&c, node](std::byte*, std::size_t) {
            std::lock_guard lock(c.m);
            if (node == 0)
              ++c.root_completions;
            else
              ++c.delivered;
            c.cv.notify_all();
          }));
    }
    std::vector<std::vector<std::byte>> payloads;
    for (int i = 0; i < 5; ++i) payloads.push_back(pattern(30000 + i, i));
    for (auto& p : payloads)
      ASSERT_TRUE(c.nodes[0]->send(1, p.data(), p.size()));
    {
      // Buffers may be released only after the root's own completions.
      std::unique_lock lock(c.m);
      ASSERT_TRUE(c.cv.wait_for(lock, 20s, [&] {
        return c.delivered == (kNodes - 1) * 5 && c.root_completions == 5;
      }));
    }
    for (NodeId node = 1; node < kNodes; ++node)
      for (int i = 0; i < 5; ++i)
        EXPECT_EQ(c.received[node][i], payloads[i])
            << sched::algorithm_name(algorithm) << " node " << node;
  }
}

TEST(TcpRdmc, SmallMessageProtocol) {
  TcpCluster c(3);
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::vector<std::byte>> got;
  for (NodeId node = 0; node < 3; ++node) {
    ASSERT_TRUE(c.nodes[node]->create_small_group(
        1, all_nodes(3), SmallGroupOptions{},
        [&, node](const std::byte* data, std::size_t size) {
          if (node != 1) return;
          std::lock_guard lock(m);
          got.emplace_back(data, data + size);
          cv.notify_all();
        }));
  }
  auto msg = pattern(500, 4);
  while (!c.nodes[0]->send_small(1, msg.data(), msg.size()))
    std::this_thread::sleep_for(1ms);
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return !got.empty(); }));
  EXPECT_EQ(got[0], msg);
}

TEST(TcpRdmc, AtomicGroupOverTcp) {
  TcpCluster c(3);
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::size_t> delivered(3, 0);
  std::vector<std::unique_ptr<derecho_lite::AtomicGroup>> groups;
  for (NodeId node = 0; node < 3; ++node) {
    groups.push_back(std::make_unique<derecho_lite::AtomicGroup>(
        *c.nodes[node], 1, all_nodes(3), derecho_lite::AtomicGroupOptions{},
        [&, node](std::size_t, const std::byte*, std::size_t) {
          std::lock_guard lock(m);
          ++delivered[node];
          cv.notify_all();
        }));
  }
  auto payload = pattern(100000, 5);
  ASSERT_TRUE(groups[0]->send(payload.data(), payload.size()));
  {
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, 10s, [&] {
      return delivered[0] == 1 && delivered[1] == 1 && delivered[2] == 1;
    }));
  }
  groups.clear();
}

TEST(TcpRdmc, CrashDetectedViaSocketEof) {
  constexpr std::size_t kNodes = 4;
  TcpCluster c(kNodes);
  std::mutex m;
  std::condition_variable cv;
  std::size_t failures = 0;
  GroupOptions options;
  options.block_size = 4096;
  for (NodeId node = 0; node < kNodes; ++node) {
    ASSERT_TRUE(c.nodes[node]->create_group(
        1, all_nodes(kNodes), options,
        [&c, node](std::size_t size) {
          c.received[node].emplace_back(size);
          return fabric::MemoryView{c.received[node].back().data(), size};
        },
        [](std::byte*, std::size_t) {},
        [&](GroupId, NodeId) {
          std::lock_guard lock(m);
          ++failures;
          cv.notify_all();
        }));
  }
  auto payload = pattern(3 << 20, 6);
  ASSERT_TRUE(c.nodes[0]->send(1, payload.data(), payload.size()));
  c.fabric.crash_node(2);
  std::unique_lock lock(m);
  // The three survivors all learn of the failure (the crashed node's
  // endpoint is gone).
  ASSERT_TRUE(cv.wait_for(lock, 20s, [&] { return failures >= 3; }));
}

}  // namespace
}  // namespace rdmc
