// Windowed telemetry: histogram snapshot algebra, hub window rotation,
// SLO burn-rate math, flight-recorder dedup/cap, and determinism of the
// JSONL export under virtual-time ticks (serial == parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "harness/sim_harness.hpp"
#include "harness/telemetry_ticker.hpp"
#include "json_scanner.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sched/schedule.hpp"
#include "util/parallel.hpp"

using namespace rdmc;
using rdmc::tests::JsonScanner;

namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Every line of a JSONL blob is a well-formed JSON document.
void expect_valid_jsonl(const std::string& jsonl) {
  std::size_t start = 0, lines = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    JsonScanner scanner(line);
    EXPECT_TRUE(scanner.whole_document()) << "bad JSONL line: " << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_GT(lines, 0u);
}

}  // namespace

// -- HistogramSnapshot hand fixtures ---------------------------------------

TEST(HistogramSnapshot, QuantileInterpolatesWithinBucketAndClampsToMax) {
  obs::Log2Histogram h(0, 4);  // buckets [1,2) [2,4) [4,8) [8,16) [16,32)
  h.add(1.5);
  h.add(1.5);
  h.add(3.0);
  h.add(3.0);
  for (int i = 0; i < 4; ++i) h.add(12.0);
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.total, 8u);
  EXPECT_DOUBLE_EQ(s.max, 12.0);

  // q=0: rank 0 in bucket [1,2) of 2 -> 1 + 1*(0.5/2) = 1.25.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.25);
  // q=0.5: rank 3.5 lands at the top of bucket [2,4) -> exactly 4.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 4.0);
  // q=1: rank 7 interpolates to 15 inside [8,16) but no sample exceeded
  // 12, so the estimate clamps to the recorded max.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 12.0);
}

TEST(HistogramSnapshot, CountAboveIsFractionalWithinStraddledBucket) {
  obs::Log2Histogram h(0, 4);
  h.add(1.5);
  h.add(1.5);
  h.add(3.0);
  h.add(3.0);
  for (int i = 0; i < 4; ++i) h.add(12.0);
  const obs::HistogramSnapshot s = h.snapshot();

  // Threshold at/below every bucket counts everything.
  EXPECT_DOUBLE_EQ(s.count_above(1.0), 8.0);
  // Threshold 2 excludes exactly the [1,2) bucket.
  EXPECT_DOUBLE_EQ(s.count_above(2.0), 6.0);
  // Threshold 12 splits [8,16): 4 * (16-12)/(16-8) = 2.
  EXPECT_DOUBLE_EQ(s.count_above(12.0), 2.0);
  // Threshold past the top bucket counts nothing.
  EXPECT_DOUBLE_EQ(s.count_above(32.0), 0.0);
}

TEST(HistogramSnapshot, OverflowSamplesCountAboveAndDriveMax) {
  obs::Log2Histogram h(0, 4);
  h.add(12.0);
  h.add(100.0);  // exp 6 > max_exp -> overflow
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.overflow, 1u);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // 20 is past the [8,16) bucket but overflow samples are all above it.
  EXPECT_DOUBLE_EQ(s.count_above(20.0), 1.0);
  // The top rank sits in overflow -> reported as max.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(HistogramSnapshot, MergeClampsOutOfRangeBucketsAndAdoptsIntoEmpty) {
  obs::Log2Histogram narrow(0, 2);   // [1,2) [2,4) [4,8)
  narrow.add(1.5);
  obs::Log2Histogram wide(-2, 4);
  wide.add(0.3);    // exp -2: below narrow's range
  wide.add(3.0);    // exp 1: shared range
  wide.add(20.0);   // exp 4: above narrow's range

  obs::HistogramSnapshot a = narrow.snapshot();
  a.merge(wide.snapshot());
  EXPECT_EQ(a.total, 4u);
  EXPECT_EQ(a.underflow, 1u);
  EXPECT_EQ(a.overflow, 1u);
  EXPECT_EQ(a.counts[0], 1u);  // 1.5
  EXPECT_EQ(a.counts[1], 1u);  // 3.0
  EXPECT_DOUBLE_EQ(a.max, 20.0);
  EXPECT_DOUBLE_EQ(a.sum, 0.3 + 1.5 + 3.0 + 20.0);

  // A default-constructed snapshot adopts the other's bucket range.
  obs::HistogramSnapshot empty;
  empty.merge(wide.snapshot());
  EXPECT_EQ(empty.total, 3u);
  EXPECT_EQ(empty.min_exp, -2);
  EXPECT_EQ(empty.max_exp, 4);
}

TEST(HistogramSnapshot, DeltaTracksOverflowAcrossSnapshotsAndBoundsMax) {
  obs::Log2Histogram h(0, 4);
  h.add(12.0);
  h.add(100.0);  // overflow
  const obs::HistogramSnapshot prev = h.snapshot();
  h.add(3.0);
  h.add(200.0);  // second overflow; advances cumulative max
  const obs::HistogramSnapshot cur = h.snapshot();

  const obs::HistogramSnapshot d = obs::HistogramSnapshot::delta(cur, prev);
  EXPECT_EQ(d.total, 2u);
  EXPECT_EQ(d.overflow, 1u);
  EXPECT_EQ(d.counts[1], 1u);  // the 3.0
  EXPECT_DOUBLE_EQ(d.max, 200.0);  // cumulative max advanced this window

  // When the max did not advance and nothing overflowed, the delta's max
  // is the tightest bucket bound the histogram can certify.
  obs::Log2Histogram g(0, 4);
  g.add(12.0);
  const obs::HistogramSnapshot gprev = g.snapshot();
  g.add(3.0);  // below the existing max of 12
  const obs::HistogramSnapshot gd =
      obs::HistogramSnapshot::delta(g.snapshot(), gprev);
  EXPECT_EQ(gd.total, 1u);
  EXPECT_DOUBLE_EQ(gd.max, 4.0);  // hi bound of the [2,4) bucket
}

TEST(HistogramSnapshot, DeltaDetectsResetByShrunkenTotal) {
  obs::Log2Histogram big(0, 4);
  big.add(1.5);
  big.add(3.0);
  big.add(3.0);
  obs::Log2Histogram fresh(0, 4);
  fresh.add(12.0);
  // cur.total < prev.total: the histogram restarted; delta is cur itself.
  const obs::HistogramSnapshot d =
      obs::HistogramSnapshot::delta(fresh.snapshot(), big.snapshot());
  EXPECT_EQ(d.total, 1u);
  EXPECT_EQ(d.counts[3], 1u);
  EXPECT_DOUBLE_EQ(d.max, 12.0);
}

// -- MetricsScope / registry exports ---------------------------------------

TEST(MetricsScope, DecoratesAndInternsIntoTheRegistry) {
  obs::MetricsRegistry reg;
  obs::MetricsScope& scope = reg.scope("group=1,policy=sr");
  EXPECT_EQ(scope.decorate("ud.datagrams"), "ud.datagrams{group=1,policy=sr}");
  // Same labels -> same interned scope object.
  EXPECT_EQ(&scope, &reg.scope("group=1,policy=sr"));
  // The scope's counter is the registry metric under the decorated name.
  obs::Counter& c = scope.counter("ud.datagrams");
  c.add(7);
  const obs::Counter* found =
      reg.find_counter("ud.datagrams{group=1,policy=sr}");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &c);
  EXPECT_EQ(found->value(), 7u);
}

TEST(MetricsRegistry, ToJsonCarriesSummaryAndIsByteDeterministic) {
  auto build = [] {
    obs::MetricsRegistry reg;
    reg.counter("sim.events").add(42);
    auto& h = reg.histogram("lat", 0, 4);
    h.add(1.5);
    h.add(12.0);
    reg.scope("group=1").counter("deliveries").add(3);
    return reg.to_json();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());

  JsonScanner scanner(a);
  EXPECT_TRUE(scanner.whole_document());
  EXPECT_TRUE(contains(a, "\"sim.events\":42"));
  EXPECT_TRUE(contains(a, "\"deliveries{group=1}\":3"));
  EXPECT_TRUE(contains(a, "\"summary\":{\"count\":2"));
  EXPECT_TRUE(contains(a, "\"p50\""));
  EXPECT_TRUE(contains(a, "\"p999\""));
  EXPECT_TRUE(contains(a, "\"buckets\":[[0,1],[3,1]]"));
}

TEST(MetricsRegistry, PrometheusExpositionRendersLabelsAndBuckets) {
  obs::MetricsRegistry reg;
  reg.counter("sim.events").add(42);
  reg.scope("group=1,policy=sr").counter("ud.datagrams").add(7);
  auto& h = reg.histogram("lat", 0, 2);
  h.add(1.5);
  h.add(3.0);
  const std::string prom = reg.to_prometheus();

  EXPECT_TRUE(contains(prom, "# TYPE rdmc_sim_events counter\n"));
  EXPECT_TRUE(contains(prom, "rdmc_sim_events 42\n"));
  EXPECT_TRUE(
      contains(prom, "rdmc_ud_datagrams{group=\"1\",policy=\"sr\"} 7\n"));
  EXPECT_TRUE(contains(prom, "# TYPE rdmc_lat histogram\n"));
  EXPECT_TRUE(contains(prom, "rdmc_lat_bucket{le=\"2\"} 1\n"));
  EXPECT_TRUE(contains(prom, "rdmc_lat_bucket{le=\"4\"} 2\n"));
  EXPECT_TRUE(contains(prom, "rdmc_lat_bucket{le=\"+Inf\"} 2\n"));
  EXPECT_TRUE(contains(prom, "rdmc_lat_sum 4.5\n"));
  EXPECT_TRUE(contains(prom, "rdmc_lat_count 2\n"));
}

// -- TelemetryHub window rotation ------------------------------------------

TEST(TelemetryHub, RotatesWindowsThroughEmptyTicksResetsAndEviction) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Log2Histogram& h = reg.histogram("h", 0, 4);

  obs::TelemetryOptions topt;
  topt.window_depth = 2;
  obs::TelemetryHub hub(reg, topt);

  c.add(5);
  h.add(2.0);
  hub.tick(1.0);
  {
    const obs::TelemetryWindow w = hub.last_window();
    EXPECT_EQ(w.seq, 0u);
    EXPECT_DOUBLE_EQ(w.t_end, 1.0);
    EXPECT_EQ(w.counters.at("c").value, 5u);
    EXPECT_EQ(w.counters.at("c").delta, 5u);
    EXPECT_FALSE(w.counters.at("c").reset);
    EXPECT_EQ(w.histograms.at("h").total, 1u);
  }

  // Empty tick: zero deltas, window still emitted, times chain.
  hub.tick(2.0);
  {
    const obs::TelemetryWindow w = hub.last_window();
    EXPECT_EQ(w.seq, 1u);
    EXPECT_DOUBLE_EQ(w.t_start, 1.0);
    EXPECT_DOUBLE_EQ(w.t_end, 2.0);
    EXPECT_EQ(w.counters.at("c").value, 5u);
    EXPECT_EQ(w.counters.at("c").delta, 0u);
    EXPECT_TRUE(w.histograms.at("h").empty());
    EXPECT_TRUE(contains(obs::window_json(w), "\"h\":{\"n\":0}"));
  }

  // Counter shrank mid-window: reset flag, delta restarts from the value.
  c.set(2);
  hub.tick(3.0);
  {
    const obs::TelemetryWindow w = hub.last_window();
    EXPECT_TRUE(w.counters.at("c").reset);
    EXPECT_EQ(w.counters.at("c").delta, 2u);
    EXPECT_EQ(w.counters.at("c").value, 2u);
    EXPECT_TRUE(contains(obs::window_json(w), "\"reset\":true"));
  }

  // Depth 2: the first window has been evicted.
  const auto windows = hub.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows.front().seq, 1u);
  EXPECT_EQ(windows.back().seq, 2u);
  EXPECT_EQ(hub.ticks(), 3u);
  expect_valid_jsonl(hub.jsonl());
}

TEST(TelemetryHub, MergedCombinesNewestWindowDeltas) {
  obs::MetricsRegistry reg;
  obs::Log2Histogram& h = reg.histogram("h", 0, 4);
  obs::TelemetryHub hub(reg);

  h.add(2.0);
  hub.tick(1.0);
  h.add(12.0);
  h.add(12.0);
  hub.tick(2.0);

  EXPECT_EQ(hub.merged("h", 1).total, 2u);  // newest window only
  const obs::HistogramSnapshot both = hub.merged("h", 2);
  EXPECT_EQ(both.total, 3u);
  EXPECT_DOUBLE_EQ(both.max, 12.0);
  EXPECT_EQ(hub.merged("absent", 2).total, 0u);
}

// -- SLO burn rates vs hand-computed fixtures ------------------------------

TEST(SloTracker, BurnRatesAlertsAndLedgerMatchHandComputation) {
  obs::MetricsRegistry reg;
  obs::Log2Histogram& lat = reg.histogram("lat", 0, 4);
  obs::TelemetryHub hub(reg);

  obs::SloObjective o;
  o.name = "lat-p50";
  o.histogram = "lat";
  o.quantile = 0.5;
  o.threshold = 8.0;  // bucket boundary: 4.0 is below, 12.0 fully above
  o.fast_windows = 1;
  o.slow_windows = 2;
  o.budget = 0.25;
  o.alert_burn = 2.0;
  obs::SloTracker slo({o});
  slo.attach(hub);

  std::vector<std::uint64_t> alert_seqs;
  slo.add_alert_listener(
      [&](const obs::SloState& st, const obs::TelemetryWindow& w) {
        EXPECT_EQ(st.objective.name, "lat-p50");
        alert_seqs.push_back(w.seq);
      });

  // Window 0: 1 of 4 samples above -> frac 0.25 -> burn exactly 1.0.
  lat.add(12.0);
  lat.add(4.0);
  lat.add(4.0);
  lat.add(4.0);
  hub.tick(1.0);
  {
    const obs::SloState& st = slo.states()[0];
    EXPECT_DOUBLE_EQ(st.fast_burn, 1.0);
    EXPECT_DOUBLE_EQ(st.slow_burn, 1.0);
    EXPECT_FALSE(st.alerting);
    EXPECT_EQ(st.alerts, 0u);
  }

  // Window 1: 2 of 2 above -> fast burn 4; slow (3 of 6) -> burn 2.
  // Both reach alert_burn -> rising edge.
  lat.add(12.0);
  lat.add(12.0);
  hub.tick(2.0);
  {
    const obs::SloState& st = slo.states()[0];
    EXPECT_DOUBLE_EQ(st.fast_burn, 4.0);
    EXPECT_DOUBLE_EQ(st.slow_burn, 2.0);
    EXPECT_TRUE(st.alerting);
    EXPECT_EQ(st.alerts, 1u);
  }

  // Window 2: quiet -> fast window empty -> burn 0 -> alert clears.
  hub.tick(3.0);
  EXPECT_FALSE(slo.states()[0].alerting);
  EXPECT_EQ(slo.states()[0].alerts, 1u);

  // Window 3: breach again -> a second rising edge, not a repeat of the
  // first (listeners only see edges).
  lat.add(12.0);
  lat.add(12.0);
  hub.tick(4.0);
  {
    const obs::SloState& st = slo.states()[0];
    EXPECT_DOUBLE_EQ(st.fast_burn, 4.0);
    EXPECT_DOUBLE_EQ(st.slow_burn, 4.0);
    EXPECT_EQ(st.alerts, 2u);
    ASSERT_EQ(alert_seqs.size(), 2u);
    EXPECT_EQ(alert_seqs[0], 1u);
    EXPECT_EQ(alert_seqs[1], 3u);

    // Ledger: violating 1+2+0+2 = 5 of total 4+2+0+2 = 8 samples;
    // budget_consumed = 5 / (0.25 * 8) = 2.5.
    EXPECT_DOUBLE_EQ(st.violating, 5.0);
    EXPECT_DOUBLE_EQ(st.total, 8.0);
    EXPECT_DOUBLE_EQ(st.budget_consumed(), 2.5);
  }

  const std::string ledger = slo.ledger_json();
  JsonScanner scanner(ledger);
  EXPECT_TRUE(scanner.whole_document());
  EXPECT_TRUE(contains(ledger, "\"budget_consumed\":2.5"));
  EXPECT_TRUE(contains(ledger, "\"alerts\":2"));
}

// -- Flight recorder dedup and cap -----------------------------------------

TEST(FlightRecorder, DedupsPerKeyByTickDistanceAndEnforcesCap) {
  obs::FlightOptions fo;
  fo.max_incidents = 2;
  fo.dedup_ticks = 5;
  obs::FlightRecorder flight(fo);

  EXPECT_TRUE(flight.armed("slo:a", 0));
  ASSERT_NE(flight.record("slo:a", 0, 0.0, "first", "", ""), nullptr);

  // Same key inside the dedup interval: refused and counted.
  EXPECT_FALSE(flight.armed("slo:a", 4));
  EXPECT_EQ(flight.record("slo:a", 4, 0.4, "dup", "", ""), nullptr);
  EXPECT_EQ(flight.suppressed(), 1u);

  // The key re-arms exactly dedup_ticks later.
  EXPECT_TRUE(flight.armed("slo:a", 5));
  ASSERT_NE(flight.record("slo:a", 5, 0.5, "second", "", ""), nullptr);

  // Cap reached: even a fresh key is refused.
  EXPECT_FALSE(flight.armed("slo:b", 0));
  EXPECT_EQ(flight.record("slo:b", 0, 0.0, "over cap", "", ""), nullptr);
  EXPECT_EQ(flight.incidents().size(), 2u);
  EXPECT_EQ(flight.suppressed(), 2u);

  const std::string json = flight.to_json();
  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.whole_document());
  EXPECT_TRUE(contains(json, "\"suppressed\":2"));
  // Empty analysis/window slots serialize as null, not as empty strings.
  EXPECT_TRUE(contains(json, "\"analysis\":null"));
  EXPECT_TRUE(contains(json, "\"window\":null"));
}

TEST(FlightRecorder, IncidentEmbedsFrozenTraceSlice) {
  obs::TraceRecorder::instance().enable();
  harness::MulticastConfig cfg;
  cfg.profile = sim::fractus_profile(4);
  cfg.group_size = 4;
  cfg.message_bytes = 1u << 20;
  cfg.block_size = 64 << 10;
  harness::run_multicast(cfg);

  obs::FlightRecorder flight;
  const obs::Incident* inc =
      flight.record("slo:trace", 3, 1.5, "embed test", "", "");
  obs::TraceRecorder::instance().disable();
  ASSERT_NE(inc, nullptr);
  JsonScanner scanner(inc->json);
  EXPECT_TRUE(scanner.whole_document());
  EXPECT_TRUE(contains(inc->json, "\"traceEvents\""));
  EXPECT_TRUE(contains(inc->json, "\"key\":\"slo:trace\""));
  EXPECT_TRUE(contains(inc->json, "\"tick\":3"));
}

// -- Virtual-time ticks: determinism and termination -----------------------

namespace {

// One wan_sweep-style cell: a private cluster + cell-local registry + hub
// driven by the deterministic virtual-time ticker. The cluster's own
// registry carries host-clock counters (harness.wall_ns), so byte-stable
// exports must feed a local registry instead. Returns the cell's JSONL.
std::string run_cell(std::size_t index) {
  harness::SimCluster cluster(sim::fractus_profile(4));
  GroupOptions gopts;
  gopts.block_size = 64 << 10;
  gopts.algorithm = sched::Algorithm::kBinomialPipeline;
  auto& rec = cluster.create_group(1, {0, 1, 2, 3}, gopts);

  obs::MetricsRegistry registry;
  const std::string labels = "cell=" + std::to_string(index);
  auto& hist = registry.scope(labels).histogram("cell.delivery_latency_s");
  rec.on_latency = [&hist](std::size_t, std::size_t, double latency) {
    hist.add(latency);
  };

  obs::TelemetryOptions topt;
  topt.labels = labels;
  obs::TelemetryHub hub(registry, topt);
  harness::TelemetryTicker ticker(cluster.sim(), hub, 20e-6);

  const std::uint64_t bytes = (128u << 10) * (index + 1);
  cluster.send(1, bytes);
  ticker.ensure_scheduled();
  cluster.run_to_quiescence();
  // The ticker must not keep the simulator alive (run_to_quiescence
  // returned) and must re-arm for the next submission.
  cluster.send(1, bytes);
  ticker.ensure_scheduled();
  cluster.run_to_quiescence();

  EXPECT_GT(ticker.ticks_fired(), 0u);
  EXPECT_EQ(ticker.ticks_fired(), hub.ticks());
  return hub.jsonl();
}

}  // namespace

TEST(TelemetryTicker, VirtualTimeJsonlIsByteIdenticalAcrossRuns) {
  const std::string first = run_cell(0);
  const std::string second = run_cell(0);
  EXPECT_EQ(first, second);
  expect_valid_jsonl(first);
  EXPECT_TRUE(contains(first, "\"labels\":\"cell=0\""));
}

TEST(TelemetryTicker, ParallelCellsConcatenateIdenticallyToSerial) {
  constexpr std::size_t kCells = 4;
  std::vector<std::string> serial(kCells), parallel(kCells);
  for (std::size_t i = 0; i < kCells; ++i) serial[i] = run_cell(i);
  util::parallel_for(kCells, 4,
                     [&](std::size_t i) { parallel[i] = run_cell(i); });
  std::string serial_cat, parallel_cat;
  for (std::size_t i = 0; i < kCells; ++i) {
    serial_cat += serial[i];
    parallel_cat += parallel[i];
  }
  EXPECT_EQ(serial_cat, parallel_cat);
}

TEST(TelemetryTicker, AttachTelemetrySyncsClusterCountersIntoWindows) {
  harness::SimCluster cluster(sim::fractus_profile(4));
  GroupOptions gopts;
  gopts.block_size = 64 << 10;
  gopts.algorithm = sched::Algorithm::kChain;
  cluster.create_group(1, {0, 1, 2, 3}, gopts);

  obs::TelemetryHub hub(cluster.metrics());
  cluster.attach_telemetry(hub, 20e-6);
  cluster.send(1, 256u << 10);
  cluster.run_to_quiescence();

  EXPECT_GT(hub.ticks(), 0u);
  // sync_metrics ran before each tick, so the windows carry live
  // simulator counters, not just end-of-run totals.
  const obs::TelemetryWindow w = hub.last_window();
  ASSERT_TRUE(w.counters.count("sim.events"));
  EXPECT_GT(w.counters.at("sim.events").value, 0u);
  expect_valid_jsonl(hub.jsonl());
}

// -- Wall-clock tick thread (exercised under TSan in CI) -------------------

TEST(TelemetryHub, WallClockTicksSnapshotWhileWritersRecord) {
  obs::MetricsRegistry reg;
  obs::TelemetryHub hub(reg);
  obs::Counter& c = reg.counter("events");
  obs::Log2Histogram& h = reg.histogram("lat", -20, 4);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&c, &h, &stop, t] {
      double v = 1e-4 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        h.add(v);
        v *= 1.001;
        if (v > 8.0) v = 1e-4;
      }
    });
  }

  hub.start_wall_ticks(1e-3);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hub.stop_wall_ticks();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();

  EXPECT_GT(hub.ticks(), 0u);
  expect_valid_jsonl(hub.jsonl());
  const std::string prom = hub.prometheus_text();
  EXPECT_TRUE(contains(prom, "# TYPE rdmc_events counter"));
  EXPECT_TRUE(contains(prom, "rdmc_lat_count"));
}
