// Unreliable-datagram service type + software reliability, end to end.
//
// The load-bearing contract is cross-backend parity: a DatagramFaultProfile
// with a given seed must produce the *same* drop/duplicate/reorder sequence
// on MemFabric, TcpFabric and SimFabric, because the verdicts are a pure
// function of (seed, src, dst, per-pair index) — never of timing. On top of
// that ride the reliability policies: selective-repeat and erasure coding
// must each reconstruct a large object bit-exactly through a lossy fabric.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <numeric>
#include <vector>

#include "fabric/mem_fabric.hpp"
#include "fabric/sim_fabric.hpp"
#include "fabric/tcp_fabric.hpp"
#include "reliability/gf256.hpp"
#include "reliability/rs_code.hpp"
#include "reliability/session.hpp"

namespace rdmc {
namespace {

using namespace std::chrono_literals;
using fabric::Completion;
using fabric::MemoryView;
using fabric::QueuePair;
using fabric::WcOpcode;
using fabric::WcStatus;

constexpr std::size_t kSends = 200;
constexpr std::size_t kPayload = 64;

fabric::DatagramFaultProfile lossy_profile() {
  fabric::DatagramFaultProfile p;
  p.loss = 0.10;
  p.duplicate = 0.05;
  p.reorder = 0.10;
  p.reorder_span = 4;
  p.seed = 0xC0FFEE;
  return p;
}

struct UdRun {
  std::vector<std::uint32_t> arrivals;  // immediates in arrival order
  fabric::DatagramCounters counters;
};

/// Drive kSends datagrams 0 -> 1 through any fabric. All receives are
/// posted upfront so no_recv stays zero and the arrival sequence is the
/// wire sequence. `pump` drains the fabric (sim: run; threaded: wait).
UdRun drive(fabric::Fabric& fab,
            const std::function<void(std::size_t expected)>& pump,
            std::vector<std::uint32_t>* recv_immediates) {
  QueuePair* qp0 = fab.connect(0, 1, 0);
  QueuePair* qp1 = fab.connect(1, 0, 0);
  EXPECT_NE(qp0, nullptr);
  EXPECT_NE(qp1, nullptr);

  // Duplicates can at most double the wire count.
  std::vector<std::vector<std::byte>> bufs(2 * kSends);
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    bufs[i].resize(kPayload);
    EXPECT_TRUE(
        ok(qp1->post_recv_ud(MemoryView{bufs[i].data(), kPayload}, i)));
  }

  std::vector<std::byte> payload(kPayload);
  for (std::size_t i = 0; i < kSends; ++i) {
    for (std::size_t b = 0; b < kPayload; ++b)
      payload[b] = static_cast<std::byte>(i + 3 * b);
    EXPECT_TRUE(ok(qp0->post_send_ud(MemoryView{payload.data(), kPayload},
                                     i, static_cast<std::uint32_t>(i))));
  }

  // Every verdict is decided at send time, so after the last post the
  // counters already say how many datagrams must arrive.
  const auto c = fab.faults().datagram_counters();
  const std::size_t expected = c.sent - c.dropped + c.duplicated;
  pump(expected);

  UdRun run;
  run.counters = fab.faults().datagram_counters();
  run.arrivals = *recv_immediates;

  // Payload integrity: each arrival carries the pattern of its immediate.
  for (std::size_t a = 0; a < run.arrivals.size(); ++a) {
    const std::uint32_t imm = run.arrivals[a];
    for (std::size_t b = 0; b < kPayload; ++b)
      EXPECT_EQ(bufs[a][b], static_cast<std::byte>(imm + 3 * b))
          << "arrival " << a << " byte " << b;
  }
  return run;
}

/// Threaded-fabric receiver: records kRecvUd immediates in arrival order.
struct ThreadedSink {
  explicit ThreadedSink(fabric::Endpoint& ep) : ep_(ep) {
    ep.set_completion_handler([this](const Completion& c) {
      if (c.opcode != WcOpcode::kRecvUd || c.status != WcStatus::kSuccess)
        return;
      std::lock_guard lock(mutex);
      immediates.push_back(c.immediate);
      cv.notify_all();
    });
  }
  ~ThreadedSink() { ep_.set_completion_handler(nullptr); }
  bool wait_for(std::size_t n) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, 10s, [&] { return immediates.size() >= n; });
  }
  fabric::Endpoint& ep_;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint32_t> immediates;
};

UdRun run_mem() {
  fabric::MemFabric fab(2);
  fab.faults().set_datagram_faults(lossy_profile());
  fab.endpoint(0).set_completion_handler([](const Completion&) {});
  ThreadedSink sink(fab.endpoint(1));
  return drive(
      fab, [&](std::size_t expected) { EXPECT_TRUE(sink.wait_for(expected)); },
      &sink.immediates);
}

UdRun run_tcp() {
  fabric::TcpFabric fab(std::vector<fabric::TcpAddress>(2), {0, 1});
  fab.faults().set_datagram_faults(lossy_profile());
  fab.endpoint(0).set_completion_handler([](const Completion&) {});
  ThreadedSink sink(fab.endpoint(1));
  return drive(
      fab, [&](std::size_t expected) { EXPECT_TRUE(sink.wait_for(expected)); },
      &sink.immediates);
}

UdRun run_sim() {
  sim::Simulator sim;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 2, .nic_gbps = 100.0});
  fabric::SimFabric fab(sim, topo, {});
  fab.set_datagram_faults(lossy_profile());
  std::vector<std::uint32_t> immediates;
  fab.endpoint(0).set_completion_handler([](const Completion&) {});
  fab.endpoint(1).set_completion_handler([&](const Completion& c) {
    if (c.opcode == WcOpcode::kRecvUd && c.status == WcStatus::kSuccess)
      immediates.push_back(c.immediate);
  });
  return drive(fab, [&](std::size_t) { sim.run(); }, &immediates);
}

TEST(UdParity, SameSeedSameWireSequenceOnAllBackends) {
  const UdRun mem = run_mem();
  const UdRun tcp = run_tcp();
  const UdRun sim = run_sim();

  // The plan actually impaired something (otherwise the test is vacuous).
  EXPECT_GT(mem.counters.dropped, 0u);
  EXPECT_GT(mem.counters.duplicated, 0u);
  EXPECT_GT(mem.counters.reordered, 0u);
  EXPECT_EQ(mem.counters.no_recv, 0u);

  EXPECT_EQ(mem.arrivals, tcp.arrivals);
  EXPECT_EQ(mem.arrivals, sim.arrivals);
  for (const UdRun* r : {&tcp, &sim}) {
    EXPECT_EQ(mem.counters.sent, r->counters.sent);
    EXPECT_EQ(mem.counters.dropped, r->counters.dropped);
    EXPECT_EQ(mem.counters.duplicated, r->counters.duplicated);
    EXPECT_EQ(mem.counters.reordered, r->counters.reordered);
    EXPECT_EQ(mem.counters.delivered, r->counters.delivered);
    EXPECT_EQ(r->counters.no_recv, 0u);
  }
}

TEST(UdParity, LossNeverBreaksTheQueuePair) {
  fabric::MemFabric fab(2);
  fabric::DatagramFaultProfile p;
  p.loss = 1.0;  // every datagram dropped
  fab.faults().set_datagram_faults(p);
  std::mutex m;
  std::vector<Completion> sends;
  std::condition_variable cv;
  fab.endpoint(0).set_completion_handler([&](const Completion& c) {
    std::lock_guard lock(m);
    sends.push_back(c);
    cv.notify_all();
  });
  fab.endpoint(1).set_completion_handler([](const Completion&) {});
  QueuePair* qp0 = fab.connect(0, 1, 0);
  fab.connect(1, 0, 0);
  std::vector<std::byte> buf(128);
  for (std::size_t i = 0; i < 32; ++i)
    ASSERT_TRUE(ok(qp0->post_send_ud(MemoryView{buf.data(), buf.size()}, i,
                                     static_cast<std::uint32_t>(i))));
  {
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return sends.size() >= 32; }));
  }
  // Fire-and-forget: the sender completes successfully for every datagram
  // even though the network ate all of them, and the QP stays usable.
  for (const Completion& c : sends) {
    EXPECT_EQ(c.opcode, WcOpcode::kSendUd);
    EXPECT_EQ(c.status, WcStatus::kSuccess);
  }
  const auto counters = fab.faults().datagram_counters();
  EXPECT_EQ(counters.dropped, 32u);
  EXPECT_EQ(counters.delivered, 0u);
  fab.endpoint(0).set_completion_handler(nullptr);
}

TEST(Gf256, FieldIdentities) {
  using namespace reliability;
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, gf256::inv(x)), 1) << a;
    EXPECT_EQ(gf256::mul(x, 1), x);
    EXPECT_EQ(gf256::mul(x, 0), 0);
  }
  // Spot-check distributivity on a few triples.
  for (int a = 1; a < 256; a += 37)
    for (int b = 1; b < 256; b += 41)
      for (int c = 1; c < 256; c += 43) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf256::mul(x, static_cast<std::uint8_t>(y ^ z)),
                  gf256::mul(x, y) ^ gf256::mul(x, z));
      }
}

TEST(RsCode, RecoversAnyMErasures) {
  using reliability::RsCode;
  const std::size_t k = 8, m = 2, n = 512;
  RsCode code(k, m);
  std::vector<std::vector<std::byte>> data(k), parity(m);
  for (std::size_t i = 0; i < k; ++i) {
    data[i].resize(n);
    for (std::size_t b = 0; b < n; ++b)
      data[i][b] = static_cast<std::byte>(17 * i + 3 * b + 1);
  }
  std::vector<const std::byte*> dptr(k);
  for (std::size_t i = 0; i < k; ++i) dptr[i] = data[i].data();
  std::vector<std::byte*> pptr(m);
  for (std::size_t j = 0; j < m; ++j) {
    parity[j].resize(n);
    pptr[j] = parity[j].data();
  }
  code.encode(dptr, pptr, n);

  // Erase every pair of data symbols in turn; decode must restore both.
  for (std::size_t e1 = 0; e1 < k; ++e1) {
    for (std::size_t e2 = e1 + 1; e2 < k; ++e2) {
      auto scratch = data;
      scratch[e1].assign(n, std::byte{0});
      scratch[e2].assign(n, std::byte{0});
      std::vector<std::byte*> sym(k);
      std::vector<bool> have(k, true);
      for (std::size_t i = 0; i < k; ++i) sym[i] = scratch[i].data();
      have[e1] = have[e2] = false;
      std::vector<const std::byte*> par(m);
      for (std::size_t j = 0; j < m; ++j) par[j] = parity[j].data();
      ASSERT_TRUE(code.decode(sym, have, par, std::vector<bool>(m, true), n));
      EXPECT_EQ(scratch[e1], data[e1]);
      EXPECT_EQ(scratch[e2], data[e2]);
    }
  }

  // m+1 erasures must be rejected, not mis-decoded.
  auto scratch = data;
  std::vector<std::byte*> sym(k);
  std::vector<bool> have(k, true);
  for (std::size_t i = 0; i < k; ++i) sym[i] = scratch[i].data();
  have[0] = have[1] = have[2] = false;
  std::vector<const std::byte*> par(m);
  for (std::size_t j = 0; j < m; ++j) par[j] = parity[j].data();
  EXPECT_FALSE(code.decode(sym, have, par, std::vector<bool>(m, true), n));
}

void recover_bit_exact(reliability::Policy policy) {
  fabric::MemFabric fab(4);
  fabric::DatagramFaultProfile p;
  p.loss = 0.01;
  p.seed = 0xBADBEEF;
  fab.faults().set_datagram_faults(p);

  const std::size_t bytes = 100ull << 20;
  std::vector<std::byte> object(bytes);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < bytes; i += 8) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(object.data() + i, &x, std::min<std::size_t>(8, bytes - i));
  }

  reliability::SessionOptions opts;
  opts.policy = policy;
  opts.block_size = 256 * 1024;
  reliability::UdMulticastSession session(fab, {0, 1, 2, 3}, opts);
  ASSERT_TRUE(session.send(object.data(), bytes));
  session.wait_done();

  ASSERT_TRUE(session.all_complete());
  EXPECT_GT(fab.faults().datagram_counters().dropped, 0u);
  for (std::size_t rank = 1; rank < 4; ++rank) {
    const auto got = session.member_data(rank);
    ASSERT_EQ(got.size(), bytes) << "rank " << rank;
    EXPECT_EQ(std::memcmp(got.data(), object.data(), bytes), 0)
        << "rank " << rank;
  }
}

TEST(UdReliability, SelectiveRepeatRecovers100MBAt1PercentLoss) {
  recover_bit_exact(reliability::Policy::kSelectiveRepeat);
}

TEST(UdReliability, ErasureRecovers100MBAt1PercentLoss) {
  recover_bit_exact(reliability::Policy::kErasure);
}

TEST(UdReliability, PhantomSessionOnSimFabricDeliversAll) {
  sim::Simulator sim;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 8, .nic_gbps = 100.0});
  fabric::SimFabric fab(sim, topo, {});
  fabric::DatagramFaultProfile p;
  p.loss = 0.02;
  fab.set_datagram_faults(p);

  reliability::SessionOptions opts;
  opts.policy = reliability::Policy::kSelectiveRepeat;
  opts.block_size = 64 * 1024;
  opts.clock = [&sim] { return sim.now(); };
  opts.charge_cpu = [&fab](fabric::NodeId n, double s) {
    return fab.charge_app_seconds(n, s);
  };
  std::vector<fabric::NodeId> members(8);
  std::iota(members.begin(), members.end(), 0);
  reliability::UdMulticastSession session(fab, members, opts);
  ASSERT_TRUE(session.send(nullptr, 8ull << 20));
  sim.run();
  EXPECT_TRUE(session.done());
  EXPECT_TRUE(session.all_complete());
  EXPECT_GT(session.stats().retx_datagrams, 0u);
}

TEST(UdReliability, NonePolicyGivesUpUnderLoss) {
  sim::Simulator sim;
  sim::Topology topo(sim::TopologyConfig{.num_nodes = 4, .nic_gbps = 100.0});
  fabric::SimFabric fab(sim, topo, {});
  fabric::DatagramFaultProfile p;
  p.loss = 0.05;
  fab.set_datagram_faults(p);

  reliability::SessionOptions opts;
  opts.policy = reliability::Policy::kNone;
  opts.block_size = 64 * 1024;
  opts.clock = [&sim] { return sim.now(); };
  reliability::UdMulticastSession session(fab, {0, 1, 2, 3}, opts);
  ASSERT_TRUE(session.send(nullptr, 4ull << 20));
  sim.run();
  // No repair machinery: the session must terminate (not hang) and report
  // the losers as failed rather than complete.
  EXPECT_TRUE(session.done());
  EXPECT_FALSE(session.all_complete());
}

}  // namespace
}  // namespace rdmc
