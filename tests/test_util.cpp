#include <gtest/gtest.h>

#include <cmath>

#include "util/bytes.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rdmc::util {
namespace {

// ---------------------------------------------------------------- random --

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.uniform(0, 7)];
  for (int c : seen) EXPECT_GT(c, 800);  // ~1000 expected per bucket
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, LognormalMedianAndMean) {
  Rng rng(17);
  const double mu = std::log(12.0), sigma = 1.3;
  std::vector<double> xs;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    xs.push_back(rng.lognormal(mu, sigma));
    sum += xs.back();
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[n / 2], 12.0, 0.5);  // median = e^mu
  const double expected_mean = 12.0 * std::exp(sigma * sigma / 2.0);
  EXPECT_NEAR(sum / n, expected_mean, expected_mean * 0.05);
}

TEST(Rng, SplitIndependence) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 3);
}

// ----------------------------------------------------------------- stats --

TEST(RunningStat, MeanVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Sample, Percentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Sample, CdfMonotone) {
  Sample s;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform01());
  auto cdf = s.cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(Sample, SingleValue) {
  Sample s;
  s.add(42.0);
  EXPECT_EQ(s.percentile(0), 42.0);
  EXPECT_EQ(s.percentile(100), 42.0);
  EXPECT_EQ(s.median(), 42.0);
}

TEST(Histogram, Buckets) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.9, -1.0, 10.0, 25.0}) h.add(x);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 2u);
  EXPECT_EQ(h.count_at(9), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(3), 4.0);
  EXPECT_FALSE(h.ascii().empty());
}

// ----------------------------------------------------------------- bytes --

TEST(Bytes, Format) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2 KB");
  EXPECT_EQ(format_bytes(256 * kMiB), "256 MB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3 GB");
}

TEST(Bytes, ParseSize) {
  EXPECT_EQ(parse_size("1024"), 1024u);
  EXPECT_EQ(parse_size("16KB"), 16 * kKiB);
  EXPECT_EQ(parse_size("1 MB"), kMiB);
  EXPECT_EQ(parse_size("2g"), 2 * kGiB);
  EXPECT_EQ(parse_size("8MiB"), 8 * kMiB);
  EXPECT_FALSE(parse_size("garbage").has_value());
  EXPECT_FALSE(parse_size("12q").has_value());
  EXPECT_FALSE(parse_size("").has_value());
}

TEST(Bytes, Gbps) {
  // 1.25 GB in one second = 10 Gb/s (decimal).
  EXPECT_NEAR(to_gbps(1.25e9, 1.0), 10.0, 1e-9);
  EXPECT_EQ(to_gbps(100, 0.0), 0.0);
}

TEST(Bytes, FormatDuration) {
  EXPECT_EQ(format_duration(2.5), "2.500 s");
  EXPECT_EQ(format_duration(0.0615), "61.50 ms");
  EXPECT_EQ(format_duration(450e-6), "450.0 us");
}

// ----------------------------------------------------------------- table --

TEST(TextTable, Render) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumFormat) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(42), "42");
}

}  // namespace
}  // namespace rdmc::util
