// Fixture: floating-point accumulate without an ordering comment must flag.
#include <numeric>
#include <vector>

double bad_sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
