// Fixture: allow() without a reason, or naming an unknown rule, is itself a
// finding (bad-suppression) and does not suppress anything.
#include <chrono>

double bad_now() {
  // rdmc-lint: allow(wall-clock)
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double worse_now() {
  // rdmc-lint: allow(no-such-rule) reasons do not rescue unknown rules
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
