// Fixture: wall-clock reads in a deterministic path (src/core) must flag.
#include <chrono>
#include <ctime>

double bad_now() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double bad_system() {
  auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_time() { return time(nullptr); }
