// Fixture header: unordered member declared here, iterated in the sibling
// .cpp — exercises the per-directory declaration harvest.
#pragma once
#include <cstdint>
#include <unordered_map>

struct Table {
  std::unordered_map<std::uint64_t, int> by_id_;
  long sum() const;
};
