// Fixture: iteration over unordered containers must flag — both a same-file
// declaration and one harvested from the sibling header.
#include <string>
#include <unordered_set>

#include "unordered_decls.hpp"

long Table::sum() const {
  long total = 0;
  for (const auto& [id, v] : by_id_) total += v;  // header-declared member
  return total;
}

std::size_t local_iter() {
  std::unordered_set<std::string> names;
  std::size_t n = 0;
  for (const auto& name : names) n += name.size();
  for (auto it = names.begin(); it != names.end(); ++it) ++n;
  return n;
}
