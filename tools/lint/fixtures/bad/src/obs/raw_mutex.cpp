// Fixture: raw standard mutex/condvar members in src/ must flag.
#include <condition_variable>
#include <mutex>

class BadGuard {
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::recursive_mutex reentrant_;
};
