// Fixture: shared fill state mutated inside parallel worker loops. Every
// write here races across workers AND makes the counts depend on the
// interleaving — both sides of the byte-identical contract broken at once.
#include <cstddef>
#include <cstdint>

template <typename F>
void parallel_for_workers(std::size_t n, std::size_t jobs, F f);
template <typename F>
void parallel_for(std::size_t n, std::size_t jobs, F f);

class Net {
  struct Counters {
    std::uint64_t filling_rounds = 0;
    std::uint64_t memo_hits = 0;
  };
  Counters counters_;
  void memo_store(std::uint64_t h);

  void fill(std::size_t n) {
    parallel_for_workers(n, 4, [&](std::size_t w, std::size_t i) {
      ++counters_.filling_rounds;
      counters_.memo_hits += 1;
      memo_store(i);
    });
  }

  void probe(std::size_t n) {
    parallel_for(n, 4, [&](std::size_t i) { memo_store(i); });
  }
};
