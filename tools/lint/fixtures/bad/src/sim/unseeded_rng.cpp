// Fixture: ambient randomness in a deterministic path (src/sim) must flag.
#include <cstdlib>
#include <random>

int bad_rand() { return rand() % 7; }

unsigned bad_device() {
  std::random_device rd;
  return rd();
}

void bad_seed() { srand(42); }
