// Fixture: ordering by pointer value must flag.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Widget {
  int x;
};

std::set<Widget*, std::less<Widget*>> bad_comparator;
std::map<Widget*, int> bad_key;

std::uintptr_t bad_cast(Widget* w) {
  return reinterpret_cast<std::uintptr_t>(w);
}
