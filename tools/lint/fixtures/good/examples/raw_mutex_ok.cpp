// Fixture: raw-mutex is scoped to src/ — examples are API clients and may
// use standard primitives directly; this must pass.
#include <condition_variable>
#include <mutex>

struct Waiter {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
};
