// Fixture: deterministic idioms that must pass every rule.
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>
#include <unordered_map>
#include <vector>

// Injected clock instead of an ambient wall-clock read.
using Clock = std::function<double()>;

double stamped(const Clock& clock) { return clock(); }

// Seeded generator owned by the caller (no rand()/random_device).
std::uint64_t next_rand(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 33;
}

// Lookup into an unordered map is fine; only iteration is order-sensitive.
int lookup(const std::unordered_map<int, int>& m, int k) {
  auto it = m.find(k);
  return it == m.end() ? 0 : it->second;
}

// Iterating an ordered map and a vector is deterministic.
long ordered_sum(const std::map<int, int>& m, const std::vector<int>& v) {
  long total = 0;
  for (const auto& [k, x] : m) total += x;
  for (int x : v) total += x;
  return total;
}

// Accumulate with the traversal order pinned and documented.
double documented_sum(const std::vector<double>& xs) {
  // Summed in vector index order (stable across runs), so the FP rounding
  // is reproducible.
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

// Integer accumulate needs no ordering comment (addition is associative).
long int_sum(const std::vector<long>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0L);
}

// Prose mentioning std::mutex or steady_clock::now() must not trip rules:
// comments and strings are stripped before matching.
const char* kDoc = "guards with std::mutex; reads steady_clock::now()";
