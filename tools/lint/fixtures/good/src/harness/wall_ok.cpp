// Fixture: wall-clock and rng rules are scoped to the deterministic paths;
// src/harness is wall-side orchestration, so these must pass.
#include <chrono>
#include <random>

double harness_now() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

unsigned harness_entropy() {
  std::random_device rd;
  return rd();
}
