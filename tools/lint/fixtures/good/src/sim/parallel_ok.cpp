// Fixture: the sanctioned parallel-fill shape — workers write only
// per-index result slots and per-worker scratch; the shared counters and
// the memo ring are updated afterwards, serially, in canonical order.
#include <cstddef>
#include <cstdint>
#include <vector>

template <typename F>
void parallel_for_workers(std::size_t n, std::size_t jobs, F f);

class Net {
  struct Counters {
    std::uint64_t filling_rounds = 0;
  };
  Counters counters_;
  std::vector<std::uint64_t> miss_pops_;
  std::vector<std::vector<int>> worker_heaps_;
  void memo_store(std::uint64_t h);
  void run_one(std::size_t mi, std::vector<int>& heap);

  void fill(std::size_t n) {
    miss_pops_.assign(n, 0);
    worker_heaps_.resize(4);
    parallel_for_workers(n, 4, [&](std::size_t w, std::size_t mi) {
      run_one(mi, worker_heaps_[w]);  // per-index slots, per-worker heap
    });
    // Serial epilogue: merge in miss order, touch shared state here only.
    for (std::size_t mi = 0; mi < n; ++mi) {
      counters_.filling_rounds += miss_pops_[mi];
      memo_store(mi);
    }
  }
};
