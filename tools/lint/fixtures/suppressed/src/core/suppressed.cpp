// Fixture: one violation per rule, each carrying a reasoned inline
// suppression — must pass as-is. The test runner also strips every
// rdmc-lint comment from a copy and asserts every rule then fires
// (round-trip).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <numeric>
#include <unordered_map>
#include <vector>

double stamped() {
  // rdmc-lint: allow(wall-clock) fixture: pretend factory boundary
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int entropy() {
  return rand();  // rdmc-lint: allow(unseeded-rng) fixture: same-line form
}

long bucket_sum() {
  std::unordered_map<int, int> counts{{1, 2}, {3, 4}};
  long total = 0;
  // rdmc-lint: allow(unordered-iter) fixture: per-entry add is order-independent
  for (const auto& [k, v] : counts) total += v;
  return total;
}

struct Widget {
  int x;
};
// rdmc-lint: allow(pointer-order) fixture: pretend a stable id is impossible
std::map<Widget*, int> by_widget;

double fp_sum(const std::vector<double>& xs) {
  // rdmc-lint: allow(float-accumulate) fixture: tolerance-checked downstream
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

class Guard {
  // rdmc-lint: allow(raw-mutex) fixture: pretend TSA cannot model this one
  mutable std::mutex mutex_;
};

template <typename F>
void parallel_for(std::size_t n, std::size_t jobs, F f);

class Tally {
  struct Counters {
    std::uint64_t filling_rounds = 0;
  };
  Counters counters_;

  void count(std::size_t n) {
    parallel_for(n, 4, [&](std::size_t) {
      // rdmc-lint: allow(parallel-shared-write) fixture: pretend this counter is atomic
      ++counters_.filling_rounds;
    });
  }
};
