#!/usr/bin/env python3
"""Tests for rdmc_lint: bad fixtures must flag, good fixtures must pass,
and suppressions must round-trip (suppressed file passes; the same file
with its rdmc-lint comments stripped fires every rule).

Run from anywhere: paths resolve relative to this script. Exit 0 on
success, 1 with a failure report otherwise. Wired into ctest as test_lint.
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "rdmc_lint")
FIXTURES = os.path.join(HERE, "fixtures")

ALL_RULES = (
    "wall-clock",
    "unseeded-rng",
    "unordered-iter",
    "pointer-order",
    "float-accumulate",
    "raw-mutex",
    "parallel-shared-write",
)

failures = []


def run_lint(paths):
    proc = subprocess.run(
        [sys.executable, LINT] + paths,
        capture_output=True,
        text=True,
        cwd=HERE,
    )
    return proc.returncode, proc.stdout, proc.stderr


def check(name, cond, detail=""):
    if cond:
        print(f"  ok: {name}")
    else:
        failures.append(name)
        print(f"  FAIL: {name}{' — ' + detail if detail else ''}")


def rules_in(output):
    return set(re.findall(r"\[([\w-]+)\]", output))


def main():
    # --- Bad fixtures: each rule's fixture must flag exactly that rule. ---
    print("bad fixtures (must flag):")
    bad_cases = [
        ("wall-clock", "bad/src/core/wall_clock.cpp", 3),
        ("unseeded-rng", "bad/src/sim/unseeded_rng.cpp", 3),
        ("unordered-iter", "bad/src/fabric", 3),  # header+source pair
        ("pointer-order", "bad/src/util/pointer_order.cpp", 3),
        ("float-accumulate", "bad/bench/float_accumulate.cpp", 1),
        ("raw-mutex", "bad/src/obs/raw_mutex.cpp", 3),
        ("parallel-shared-write", "bad/src/sim/parallel_shared_write.cpp", 3),
    ]
    for rule, rel, min_count in bad_cases:
        code, out, _ = run_lint([os.path.join(FIXTURES, rel)])
        flagged = rules_in(out)
        count = out.count(f"[{rule}]")
        check(f"{rule} fixture exits nonzero", code != 0)
        check(
            f"{rule} fixture flags only [{rule}] (>= {min_count}x)",
            flagged == {rule} and count >= min_count,
            f"got {sorted(flagged)} x{count}:\n{out}",
        )

    # Findings carry file:line anchors.
    code, out, _ = run_lint([os.path.join(FIXTURES, "bad/src/core/wall_clock.cpp")])
    check(
        "findings carry file:line anchors",
        re.search(r"wall_clock\.cpp:\d+: \[wall-clock\]", out) is not None,
        out,
    )

    # A reasonless or unknown-rule allow() is itself a finding and does not
    # suppress the underlying one.
    code, out, _ = run_lint(
        [os.path.join(FIXTURES, "bad/src/core/bad_suppression.cpp")]
    )
    check("reasonless allow() exits nonzero", code != 0)
    check(
        "reasonless allow() reports bad-suppression AND the original rule",
        {"bad-suppression", "wall-clock"} <= rules_in(out),
        out,
    )

    # --- Good fixtures: deterministic idioms and out-of-scope paths pass. ---
    print("good fixtures (must pass):")
    code, out, err = run_lint([os.path.join(FIXTURES, "good")])
    check("good tree exits zero", code == 0, out + err)
    check("good tree reports no findings", out.strip() == "", out)

    # --- Suppression round-trip. ---
    print("suppression round-trip:")
    suppressed_root = os.path.join(FIXTURES, "suppressed")
    code, out, err = run_lint([suppressed_root])
    check("suppressed fixture exits zero", code == 0, out + err)

    tmp = tempfile.mkdtemp(prefix="rdmc_lint_test_")
    try:
        # Same file, rdmc-lint comments stripped, same src/core/ path shape.
        stripped_dir = os.path.join(tmp, "src", "core")
        os.makedirs(stripped_dir)
        src = os.path.join(suppressed_root, "src", "core", "suppressed.cpp")
        with open(src, encoding="utf-8") as f:
            text = f.read()
        stripped = re.sub(r"//\s*rdmc-lint:[^\n]*", "", text)
        with open(
            os.path.join(stripped_dir, "suppressed.cpp"), "w", encoding="utf-8"
        ) as f:
            f.write(stripped)
        code, out, _ = run_lint([tmp])
        check("stripped copy exits nonzero", code != 0)
        check(
            "stripped copy fires every rule",
            set(ALL_RULES) <= rules_in(out),
            f"got {sorted(rules_in(out))}:\n{out}",
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # --- The real tree must be clean (guards against rot in either the
    # tool or the sources; suppressions in-tree must stay reasoned). ---
    print("repo tree:")
    repo_root = os.path.dirname(os.path.dirname(HERE))
    roots = [
        os.path.join(repo_root, d)
        for d in ("src", "bench", "examples")
        if os.path.isdir(os.path.join(repo_root, d))
    ]
    code, out, err = run_lint(roots)
    check("src/bench/examples are lint-clean", code == 0, out + err)

    if failures:
        print(f"\n{len(failures)} check(s) failed: {failures}")
        return 1
    print("\nall rdmc_lint checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
